#include "shard/admission.h"

#include <cmath>

namespace clpp::shard {

void TokenBucket::refill(std::uint64_t now_ns) {
  if (now_ns <= last_ns_) return;
  const double elapsed_s = static_cast<double>(now_ns - last_ns_) / 1e9;
  tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
  last_ns_ = now_ns;
}

bool TokenBucket::try_take(std::uint64_t now_ns) {
  refill(now_ns);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

std::uint64_t TokenBucket::retry_after_ms(std::uint64_t now_ns) const {
  TokenBucket probe = *this;
  probe.refill(now_ns);
  if (probe.tokens_ >= 1.0) return 0;
  if (rate_ <= 0.0) return 1000;  // no refill ever; a fixed polite hint
  const double missing = 1.0 - probe.tokens_;
  return static_cast<std::uint64_t>(std::ceil(missing / rate_ * 1e3));
}

AdmissionDecision AdmissionController::admit(const std::string& client,
                                             std::uint32_t deadline_ms,
                                             std::uint64_t now_ns,
                                             std::size_t inflight) {
  AdmissionDecision decision;
  const std::uint32_t budget_ms =
      deadline_ms != 0 ? deadline_ms : config_.default_deadline_ms;
  if (budget_ms != 0)
    decision.deadline_ns = now_ns + static_cast<std::uint64_t>(budget_ms) * 1'000'000ULL;

  if (inflight >= config_.max_inflight) {
    decision.verdict = Admit::kOverloaded;
    // The backlog drains at whatever rate the shards serve; without a
    // measured rate the honest hint is "come back after one batch window".
    decision.retry_after_ms = 50;
    ++stats_.overloaded;
    return decision;
  }

  if (config_.quota_rps > 0.0) {
    if (buckets_.size() >= config_.max_clients &&
        buckets_.find(client) == buckets_.end())
      buckets_.clear();  // coarse reset: bounded memory beats per-id fairness
    auto [it, inserted] = buckets_.try_emplace(
        client, config_.quota_rps, config_.quota_burst, now_ns);
    if (!it->second.try_take(now_ns)) {
      decision.verdict = Admit::kOverQuota;
      decision.retry_after_ms = it->second.retry_after_ms(now_ns);
      ++stats_.over_quota;
      return decision;
    }
  }

  ++stats_.accepted;
  return decision;
}

}  // namespace clpp::shard
