// Structured lint diagnostics: rule ids, severities, source ranges, fix-its.
//
// clpp::lint reports findings the way clang-tidy does: every diagnostic
// carries a stable rule id, a severity, a source range (1-based line/column
// from the frontend tokens), a human message, and — when the dependence
// analysis can synthesize one — a fix-it in the form of the corrected
// pragma line. Reports render as compiler-style text or as a SARIF-lite
// JSON document for machine consumption (lint_audit, CI annotations).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/json.h"

namespace clpp::lint {

/// Diagnostic severity; errors are findings that make the directive wrong
/// (races, broken semantics), warnings are likely-unintended or
/// conservative findings.
enum class Severity { kError, kWarning, kNote };

std::string severity_name(Severity severity);

/// Stable rule identifiers. These strings appear in text/JSON output, in
/// `LintReport::has_rule`, and as the ground-truth `bug` tag of
/// deliberately corrupted codegen records — keep them in sync with the
/// rule table in DESIGN.md.
namespace rule {
inline constexpr const char* kLoopCarried = "loop-carried-dependence";
inline constexpr const char* kMissingPrivate = "missing-private";
inline constexpr const char* kMissingReduction = "missing-reduction";
inline constexpr const char* kSharedInduction = "shared-induction";
inline constexpr const char* kUninitializedPrivate = "uninitialized-private";
inline constexpr const char* kNonCanonicalLoop = "non-canonical-loop";
inline constexpr const char* kSmallTripCount = "small-trip-count";
inline constexpr const char* kUnknownCallEffect = "unknown-call-effect";
inline constexpr const char* kParseError = "parse-error";
// `omp simd` legality family (requires the v2 distance engine).
inline constexpr const char* kSimdUnsafeDep = "simd-unsafe-carried-dependence";
inline constexpr const char* kSimdMissesSafelen = "simd-misses-safelen";
inline constexpr const char* kSimdReductionMismatch = "simd-reduction-mismatch";
inline constexpr const char* kSimdNonInnermost = "simd-on-non-innermost";
}  // namespace rule

/// Static metadata for one rule (SARIF tool.driver.rules, docs).
struct RuleInfo {
  const char* id;
  const char* summary;
  Severity default_severity;
};

/// Every rule clpp-lint can emit, in stable order.
const std::vector<RuleInfo>& all_rules();

/// 1-based, inclusive source range. line == 0 means "no position known"
/// (synthesized AST nodes).
struct SourceRange {
  int line = 0;
  int column = 0;
  int end_line = 0;
  int end_column = 0;

  bool known() const { return line > 0; }

  bool operator==(const SourceRange&) const = default;
};

/// One finding.
struct Diagnostic {
  std::string rule;  // rule::k* id
  Severity severity = Severity::kWarning;
  SourceRange range;
  std::string message;
  /// Fix-it: the full corrected `#pragma omp ...` line ("" = no fix
  /// available). Always a whole-line replacement of the directive.
  std::string fix;
  /// Decision provenance: which dependence test produced this finding and
  /// what it concluded (analysis::provenance_text). Empty when the finding
  /// is not backed by a dependence-engine decision.
  std::string provenance;
};

/// All findings for one translation unit.
struct LintReport {
  std::string file;  // display name used in text/JSON rendering
  std::vector<Diagnostic> diagnostics;
  std::size_t loops_checked = 0;  // directive/loop pairs analyzed

  std::size_t errors() const;
  std::size_t warnings() const;
  bool clean() const { return diagnostics.empty(); }
  bool has_rule(const std::string& rule_id) const;

  /// Compiler-style rendering:
  ///   file:line:col: error: message [rule-id]
  ///   file:line:col: note: suggested fix: #pragma omp ...
  std::string to_text() const;

  /// Schema-versioned JSON document (schema "clpp.lint.v1"):
  ///   {"schema": "clpp.lint.v1", "file": ..., "loops_checked": N,
  ///    "errors": N, "warnings": N,
  ///    "diagnostics": [{"rule", "level", "line", "column", "end_line",
  ///                     "end_column", "message", "fix"?}, ...]}
  Json to_json() const;
};

/// Valid SARIF 2.1.0 document over one or more reports: one run with
/// tool.driver.rules populated from all_rules(), one result per diagnostic
/// (ruleId/ruleIndex/level/message/locations), and fix-its rendered as
/// results[].fixes replacing the directive line. GitHub code scanning can
/// ingest this directly.
Json sarif_document(const std::vector<LintReport>& reports);

}  // namespace clpp::lint
