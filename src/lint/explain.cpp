#include "lint/explain.h"

#include <utility>

#include "analysis/sideeffects.h"

namespace clpp::lint {

using frontend::Node;
using frontend::NodeKind;

namespace {

void explain_loops(const Node& node, int for_depth,
                   const analysis::DependenceAnalyzer& analyzer,
                   std::vector<LoopExplanation>& out) {
  int child_depth = for_depth;
  if (node.kind == NodeKind::kFor) {
    const analysis::LoopVerdict verdict = analyzer.analyze(node);
    LoopExplanation loop;
    loop.line = node.line;
    loop.depth = for_depth;
    loop.induction = verdict.induction;
    loop.canonical = verdict.canonical;
    loop.parallelizable = verdict.parallelizable;
    loop.bailed = verdict.bailed;
    loop.exact = verdict.exact();
    loop.trip_count = verdict.trip_count;
    loop.notes = verdict.notes;
    loop.pairs = verdict.pair_provenance;
    loop.private_candidates = verdict.private_candidates;
    loop.reductions = verdict.reductions;
    out.push_back(std::move(loop));
    child_depth = for_depth + 1;
  }
  for (const auto& child : node.children)
    if (child) explain_loops(*child, child_depth, analyzer, out);
}

}  // namespace

std::vector<LoopExplanation> explain_unit(
    const Node& unit, const analysis::AnalyzerOptions& options) {
  const analysis::SideEffectOracle oracle(unit);
  const analysis::DependenceAnalyzer analyzer(oracle, options);
  std::vector<LoopExplanation> loops;
  explain_loops(unit, 0, analyzer, loops);
  return loops;
}

std::string render_explanations(const std::string& file,
                                const std::vector<LoopExplanation>& loops) {
  std::string out = file + ": " + std::to_string(loops.size()) + " loop(s)\n";
  for (const LoopExplanation& loop : loops) {
    const std::string indent(static_cast<std::size_t>(loop.depth) * 2, ' ');
    out += indent + "loop";
    if (loop.line > 0) out += " at line " + std::to_string(loop.line);
    if (!loop.induction.empty()) out += " (induction " + loop.induction + ")";
    out += ": ";
    if (!loop.canonical)
      out += "non-canonical";
    else if (loop.parallelizable)
      out += "parallelizable";
    else
      out += "serial";
    if (loop.bailed) out += ", bailed";
    if (loop.canonical) out += loop.exact ? ", exact proof" : ", conservative";
    if (loop.trip_count)
      out += ", trip count " + std::to_string(*loop.trip_count);
    out += '\n';
    for (const analysis::PairProvenance& pair : loop.pairs)
      out += indent + "  pair: " + analysis::provenance_text(pair) + '\n';
    if (!loop.private_candidates.empty()) {
      out += indent + "  private:";
      for (const std::string& name : loop.private_candidates) out += ' ' + name;
      out += '\n';
    }
    for (const frontend::Reduction& r : loop.reductions)
      out += indent + "  reduction: " + r.variable + " (" +
             frontend::reduction_op_name(r.op) + ")\n";
    for (const std::string& note : loop.notes)
      out += indent + "  note: " + note + '\n';
  }
  return out;
}

Json explanations_json(const std::string& file,
                       const std::vector<LoopExplanation>& loops) {
  Json doc = Json::object();
  doc["schema"] = "clpp.explain.v1";
  doc["file"] = file;
  Json items = Json::array();
  for (const LoopExplanation& loop : loops) {
    Json item = Json::object();
    item["line"] = loop.line;
    item["depth"] = loop.depth;
    item["induction"] = loop.induction;
    item["canonical"] = loop.canonical;
    item["parallelizable"] = loop.parallelizable;
    item["bailed"] = loop.bailed;
    item["exact"] = loop.exact;
    if (loop.trip_count)
      item["trip_count"] = static_cast<std::int64_t>(*loop.trip_count);
    Json pairs = Json::array();
    for (const analysis::PairProvenance& pair : loop.pairs) {
      Json p = Json::object();
      p["array"] = pair.array;
      p["src"] = pair.src_text;
      p["snk"] = pair.snk_text;
      p["test"] = pair.test;
      if (!pair.direction.empty()) p["direction"] = pair.direction;
      if (pair.distance) p["distance"] = static_cast<std::int64_t>(*pair.distance);
      p["possible"] = pair.possible;
      p["carried"] = pair.carried;
      p["exact"] = pair.exact;
      p["scalar"] = pair.scalar;
      if (pair.line > 0) p["line"] = pair.line;
      p["text"] = analysis::provenance_text(pair);
      pairs.push_back(std::move(p));
    }
    item["pairs"] = std::move(pairs);
    Json privates = Json::array();
    for (const std::string& name : loop.private_candidates)
      privates.push_back(name);
    item["private"] = std::move(privates);
    Json reductions = Json::array();
    for (const frontend::Reduction& r : loop.reductions) {
      Json red = Json::object();
      red["variable"] = r.variable;
      red["op"] = frontend::reduction_op_name(r.op);
      reductions.push_back(std::move(red));
    }
    item["reductions"] = std::move(reductions);
    Json notes = Json::array();
    for (const std::string& note : loop.notes) notes.push_back(note);
    item["notes"] = std::move(notes);
    items.push_back(std::move(item));
  }
  doc["loops"] = std::move(items);
  return doc;
}

}  // namespace clpp::lint
