// Static OpenMP race detector and directive linter.
//
// The linter closes the loop the paper leaves open: once a transformer (or
// a human, or a label generator) has attached `#pragma omp parallel for`
// to a loop, is the directive actually *right*? It walks a parsed
// translation unit, pairs each worksharing-loop pragma with the loop that
// follows it, re-runs the clpp::analysis dependence machinery on that loop,
// and diffs what the analysis proves against what the directive claims.
//
// Rules (ids in lint/diagnostics.h):
//   loop-carried-dependence  error    dependence survives the clauses given
//   missing-private          error    per-iteration scalar not privatized
//   missing-reduction        error    reduction idiom without the clause
//   shared-induction         error    induction variable listed shared(...)
//   uninitialized-private    warning  private var read before first write
//   non-canonical-loop       error    directive on an unshareable loop
//   small-trip-count         warning  static trip count too small to pay off
//   unknown-call-effect      warning  callee side effects cannot be proven
//   parse-error              error    input did not parse (CLI robustness)
//
// `omp simd` legality family (needs the v2 distance engine in
// analysis/ddtest.h — a carried dependence of known distance d is *legal*
// under safelen(k) iff k <= d):
//   simd-unsafe-carried-dependence  error    distance 1/unknown, or safelen > d
//   simd-misses-safelen             error    known d >= 2 but no safelen given
//   simd-reduction-mismatch         error    simd accumulation without clause
//   simd-on-non-innermost           warning  simd on a loop containing a loop
//
// Fix-its reuse the S2S clause synthesizer (`s2s::directive_from_verdict`):
// clause-level findings carry the corrected whole pragma line.
#pragma once

#include <string>

#include "analysis/depend.h"
#include "frontend/ast.h"
#include "lint/diagnostics.h"

namespace clpp::lint {

/// Default analyzer personality for linting: maximum recognition power
/// (min/max reductions on, unknown calls assumed pure so dependence testing
/// continues past them — call effects are reported separately by the
/// unknown-call-effect rule), and no trip-count gate (handled by the
/// small-trip-count rule instead).
analysis::AnalyzerOptions lint_analyzer_options();

struct LintOptions {
  analysis::AnalyzerOptions analyzer = lint_analyzer_options();
  /// Loops with a static trip count below this draw small-trip-count.
  long long small_trip_threshold = 8;
  /// Attach corrected-pragma fix-its to clause-level diagnostics.
  bool emit_fixits = true;
};

class Linter {
 public:
  explicit Linter(LintOptions options = {});

  const LintOptions& options() const { return options_; }

  /// Parses `source` and lints it; a parse failure yields a single
  /// parse-error diagnostic instead of throwing.
  LintReport lint_source(const std::string& source,
                         std::string file = "<input>") const;

  /// Lints an already-parsed translation unit.
  LintReport lint_unit(const frontend::Node& unit,
                       std::string file = "<input>") const;

  /// Lints one (directive, loop) pair directly — the corpus convention
  /// where a record's directive applies to the snippet's first loop
  /// regardless of intervening declarations. `loop` may be null ("directive
  /// with no loop to govern" → non-canonical-loop).
  LintReport lint_loop(const frontend::Node& unit,
                       const frontend::OmpDirective& directive,
                       const frontend::Node* loop,
                       std::string file = "<input>") const;

 private:
  void lint_pair(const frontend::Node& unit, SourceRange at_pragma,
                 const frontend::OmpDirective& directive,
                 const frontend::Node* stmt, LintReport& report) const;

  LintOptions options_;
};

}  // namespace clpp::lint
