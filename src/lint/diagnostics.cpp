#include "lint/diagnostics.h"

namespace clpp::lint {

std::string severity_name(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "unknown";
}

std::size_t LintReport::errors() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == Severity::kError) ++n;
  return n;
}

std::size_t LintReport::warnings() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == Severity::kWarning) ++n;
  return n;
}

bool LintReport::has_rule(const std::string& rule_id) const {
  for (const Diagnostic& d : diagnostics)
    if (d.rule == rule_id) return true;
  return false;
}

std::string LintReport::to_text() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += file;
    out += ':';
    out += std::to_string(d.range.line);
    out += ':';
    out += std::to_string(d.range.column);
    out += ": ";
    out += severity_name(d.severity);
    out += ": ";
    out += d.message;
    out += " [";
    out += d.rule;
    out += "]\n";
    if (!d.fix.empty()) {
      out += file;
      out += ':';
      out += std::to_string(d.range.line);
      out += ':';
      out += std::to_string(d.range.column);
      out += ": note: suggested fix: ";
      out += d.fix;
      out += '\n';
    }
  }
  out += file;
  out += ": ";
  out += std::to_string(errors());
  out += " error(s), ";
  out += std::to_string(warnings());
  out += " warning(s) across ";
  out += std::to_string(loops_checked);
  out += " loop(s)\n";
  return out;
}

Json LintReport::to_json() const {
  Json doc = Json::object();
  doc["file"] = file;
  doc["loops_checked"] = loops_checked;
  doc["errors"] = errors();
  doc["warnings"] = warnings();
  Json items = Json::array();
  for (const Diagnostic& d : diagnostics) {
    Json item = Json::object();
    item["rule"] = d.rule;
    item["level"] = severity_name(d.severity);
    item["line"] = d.range.line;
    item["column"] = d.range.column;
    item["end_line"] = d.range.end_line;
    item["end_column"] = d.range.end_column;
    item["message"] = d.message;
    if (!d.fix.empty()) item["fix"] = d.fix;
    items.push_back(std::move(item));
  }
  doc["diagnostics"] = std::move(items);
  return doc;
}

}  // namespace clpp::lint
