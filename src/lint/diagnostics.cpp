#include "lint/diagnostics.h"

namespace clpp::lint {

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> rules = {
      {rule::kLoopCarried,
       "A dependence crosses iterations of the worksharing loop; the directive "
       "makes the program race.",
       Severity::kError},
      {rule::kMissingPrivate,
       "A scalar rewritten every iteration is not privatized; concurrent "
       "writes race.",
       Severity::kError},
      {rule::kMissingReduction,
       "An accumulation idiom has no (or the wrong) reduction clause.",
       Severity::kError},
      {rule::kSharedInduction,
       "The induction variable is listed shared(...); every thread would "
       "write the one shared iterator.",
       Severity::kError},
      {rule::kUninitializedPrivate,
       "A private variable is read before any write; private copies start "
       "uninitialized.",
       Severity::kWarning},
      {rule::kNonCanonicalLoop,
       "The directive is not followed by a loop in OpenMP canonical form.",
       Severity::kError},
      {rule::kSmallTripCount,
       "The static trip count is below the profitability threshold; fork/join "
       "overhead dominates.",
       Severity::kWarning},
      {rule::kUnknownCallEffect,
       "The loop calls a function whose side effects the analysis cannot "
       "bound.",
       Severity::kWarning},
      {rule::kParseError, "The input does not parse.", Severity::kError},
      {rule::kSimdUnsafeDep,
       "The simd loop carries a dependence no safelen can license (distance 1, "
       "unknown, or below the declared safelen).",
       Severity::kError},
      {rule::kSimdMissesSafelen,
       "The simd loop carries a dependence of known distance d >= 2 but "
       "declares no safelen; any vector length above d is miscompiled.",
       Severity::kError},
      {rule::kSimdReductionMismatch,
       "The simd loop accumulates into a scalar that is not declared in a "
       "reduction clause on the simd directive.",
       Severity::kError},
      {rule::kSimdNonInnermost,
       "simd is applied to a loop that contains another loop; vectorizing a "
       "non-innermost loop is rarely intended.",
       Severity::kWarning},
  };
  return rules;
}

std::string severity_name(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "unknown";
}

std::size_t LintReport::errors() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == Severity::kError) ++n;
  return n;
}

std::size_t LintReport::warnings() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == Severity::kWarning) ++n;
  return n;
}

bool LintReport::has_rule(const std::string& rule_id) const {
  for (const Diagnostic& d : diagnostics)
    if (d.rule == rule_id) return true;
  return false;
}

std::string LintReport::to_text() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += file;
    out += ':';
    out += std::to_string(d.range.line);
    out += ':';
    out += std::to_string(d.range.column);
    out += ": ";
    out += severity_name(d.severity);
    out += ": ";
    out += d.message;
    out += " [";
    out += d.rule;
    out += "]\n";
    if (!d.fix.empty()) {
      out += file;
      out += ':';
      out += std::to_string(d.range.line);
      out += ':';
      out += std::to_string(d.range.column);
      out += ": note: suggested fix: ";
      out += d.fix;
      out += '\n';
    }
    if (!d.provenance.empty()) {
      out += file;
      out += ':';
      out += std::to_string(d.range.line);
      out += ':';
      out += std::to_string(d.range.column);
      out += ": note: dependence proof: ";
      out += d.provenance;
      out += '\n';
    }
  }
  out += file;
  out += ": ";
  out += std::to_string(errors());
  out += " error(s), ";
  out += std::to_string(warnings());
  out += " warning(s) across ";
  out += std::to_string(loops_checked);
  out += " loop(s)\n";
  return out;
}

Json LintReport::to_json() const {
  Json doc = Json::object();
  doc["schema"] = "clpp.lint.v1";
  doc["file"] = file;
  doc["loops_checked"] = loops_checked;
  doc["errors"] = errors();
  doc["warnings"] = warnings();
  Json items = Json::array();
  for (const Diagnostic& d : diagnostics) {
    Json item = Json::object();
    item["rule"] = d.rule;
    item["level"] = severity_name(d.severity);
    item["line"] = d.range.line;
    item["column"] = d.range.column;
    item["end_line"] = d.range.end_line;
    item["end_column"] = d.range.end_column;
    item["message"] = d.message;
    if (!d.fix.empty()) item["fix"] = d.fix;
    if (!d.provenance.empty()) item["provenance"] = d.provenance;
    items.push_back(std::move(item));
  }
  doc["diagnostics"] = std::move(items);
  return doc;
}

namespace {

/// SARIF levels are "error" | "warning" | "note".
std::string sarif_level(Severity severity) { return severity_name(severity); }

Json sarif_region(const SourceRange& range) {
  Json region = Json::object();
  region["startLine"] = range.known() ? range.line : 1;
  region["startColumn"] = range.known() ? range.column : 1;
  if (range.end_line > 0) {
    region["endLine"] = range.end_line;
    region["endColumn"] = range.end_column;
  }
  return region;
}

Json sarif_location(const std::string& uri, const SourceRange& range) {
  Json artifact = Json::object();
  artifact["uri"] = uri;
  Json physical = Json::object();
  physical["artifactLocation"] = std::move(artifact);
  physical["region"] = sarif_region(range);
  Json location = Json::object();
  location["physicalLocation"] = std::move(physical);
  return location;
}

}  // namespace

Json sarif_document(const std::vector<LintReport>& reports) {
  Json driver = Json::object();
  driver["name"] = "clpp-lint";
  driver["informationUri"] = "https://github.com/clpp/clpp";
  driver["version"] = "2.0.0";
  Json rules = Json::array();
  std::size_t index = 0;
  std::vector<std::string> rule_order;
  for (const RuleInfo& info : all_rules()) {
    Json rule = Json::object();
    rule["id"] = info.id;
    Json text = Json::object();
    text["text"] = info.summary;
    rule["shortDescription"] = std::move(text);
    Json config = Json::object();
    config["level"] = sarif_level(info.default_severity);
    rule["defaultConfiguration"] = std::move(config);
    rules.push_back(std::move(rule));
    rule_order.push_back(info.id);
    ++index;
  }
  driver["rules"] = std::move(rules);
  Json tool = Json::object();
  tool["driver"] = std::move(driver);

  Json results = Json::array();
  for (const LintReport& report : reports) {
    for (const Diagnostic& d : report.diagnostics) {
      Json result = Json::object();
      result["ruleId"] = d.rule;
      for (std::size_t r = 0; r < rule_order.size(); ++r)
        if (rule_order[r] == d.rule) result["ruleIndex"] = r;
      result["level"] = sarif_level(d.severity);
      Json message = Json::object();
      message["text"] = d.message;
      result["message"] = std::move(message);
      Json locations = Json::array();
      locations.push_back(sarif_location(report.file, d.range));
      result["locations"] = std::move(locations);
      if (!d.provenance.empty()) {
        Json properties = Json::object();
        properties["dependenceProof"] = d.provenance;
        result["properties"] = std::move(properties);
      }
      if (!d.fix.empty()) {
        // The fix is always a whole-line replacement of the directive.
        Json inserted = Json::object();
        inserted["text"] = d.fix;
        Json replacement = Json::object();
        Json deleted = Json::object();
        deleted["startLine"] = d.range.known() ? d.range.line : 1;
        deleted["startColumn"] = 1;
        replacement["deletedRegion"] = std::move(deleted);
        replacement["insertedContent"] = std::move(inserted);
        Json replacements = Json::array();
        replacements.push_back(std::move(replacement));
        Json artifact = Json::object();
        artifact["uri"] = report.file;
        Json change = Json::object();
        change["artifactLocation"] = std::move(artifact);
        change["replacements"] = std::move(replacements);
        Json changes = Json::array();
        changes.push_back(std::move(change));
        Json description = Json::object();
        description["text"] = "replace the directive with: " + d.fix;
        Json fix = Json::object();
        fix["description"] = std::move(description);
        fix["artifactChanges"] = std::move(changes);
        Json fixes = Json::array();
        fixes.push_back(std::move(fix));
        result["fixes"] = std::move(fixes);
      }
      results.push_back(std::move(result));
    }
  }

  Json run = Json::object();
  run["tool"] = std::move(tool);
  run["results"] = std::move(results);
  Json runs = Json::array();
  runs.push_back(std::move(run));

  Json doc = Json::object();
  doc["$schema"] =
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
      "sarif-schema-2.1.0.json";
  doc["version"] = "2.1.0";
  doc["runs"] = std::move(runs);
  return doc;
}

}  // namespace clpp::lint
