// lint_audit: running the linter over machine-produced directives.
//
// Two audit modes close the quality loop of the paper's pipeline:
//   * audit_labels — lint every labeled corpus record (directive + code).
//     With codegen's buggy-directive knob on, records carry a ground-truth
//     `bug` rule id; the audit reports a confusion summary (seeded bugs
//     caught / missed) plus disagreements on nominally clean labels.
//   * audit_predictions — lint the directives a model predicted for each
//     record: linter-vs-model disagreement, the static-analysis second
//     opinion on transformer output.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "lint/linter.h"

namespace clpp::lint {

/// Lint outcome for one record.
struct AuditRow {
  std::string id;
  std::string family;
  std::string bug;  // seeded ground-truth rule id ("" = nominally clean)
  bool linted = false;  // record had a directive to lint
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::vector<std::string> rules;  // distinct rule ids fired, in order
  bool bug_caught = false;         // bug != "" and that rule fired
};

/// Aggregate audit outcome.
struct AuditReport {
  std::string subject;  // "labels" or "predictions"
  std::size_t records = 0;
  std::size_t linted = 0;          // records with a directive
  std::size_t clean = 0;           // linted with zero diagnostics
  std::size_t with_errors = 0;
  std::size_t with_warnings_only = 0;
  std::map<std::string, std::size_t> rule_counts;  // rule id -> firings
  /// Seeded-bug confusion (only populated when records carry `bug` tags).
  std::size_t seeded_bugs = 0;
  std::size_t bugs_caught = 0;  // seeded rule fired on the seeded record
  std::size_t bugs_missed = 0;
  std::size_t clean_flagged = 0;  // untagged record drew an error anyway
  std::vector<AuditRow> rows;     // per-record detail, input order

  /// bugs_caught / seeded_bugs (1.0 when nothing was seeded).
  double catch_rate() const;

  std::string to_text() const;
  Json to_json() const;
};

/// Lints every labeled record's own directive against its code.
AuditReport audit_labels(const corpus::Corpus& corpus, const Linter& linter = Linter{});

/// Lints predicted directives: `predictions[i]` is the pragma text the
/// model emitted for record i ("" = predicted serial, skipped). Requires
/// predictions.size() == corpus.size().
AuditReport audit_predictions(const corpus::Corpus& corpus,
                              const std::vector<std::string>& predictions,
                              const Linter& linter = Linter{});

}  // namespace clpp::lint
