#include "lint/audit.h"

#include <algorithm>

#include "frontend/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace clpp::lint {

namespace {

/// Lints `directive_text` against `code` under the corpus convention: the
/// directive governs the snippet's first loop, wherever it sits after the
/// leading declarations. Parse failures surface as parse-error findings.
LintReport lint_record(const Linter& linter, const std::string& directive_text,
                       const std::string& code, const std::string& file) {
  frontend::NodePtr unit;
  frontend::OmpDirective directive;
  try {
    unit = frontend::parse_snippet(code);
    directive = frontend::parse_omp_pragma(directive_text);
  } catch (const ParseError& e) {
    LintReport report;
    report.file = file;
    report.diagnostics.push_back({rule::kParseError, Severity::kError,
                                  {1, 1, 1, 1},
                                  std::string("record does not parse: ") + e.what(),
                                  {},
                                  {}});
    return report;
  }
  const frontend::Node* loop = nullptr;
  frontend::walk(*unit, [&](const frontend::Node& node, int) {
    if (loop == nullptr && node.kind == frontend::NodeKind::kFor) loop = &node;
  });
  return linter.lint_loop(*unit, directive, loop, file);
}

/// Shared audit core: `directive_of(i)` supplies the pragma text to lint
/// for record i ("" = nothing to lint).
template <typename DirectiveOf>
AuditReport run_audit(const corpus::Corpus& corpus, const Linter& linter,
                      std::string subject, const DirectiveOf& directive_of) {
  CLPP_TRACE_SPAN("lint.audit");
  AuditReport report;
  report.subject = std::move(subject);
  report.records = corpus.size();
  report.rows.reserve(corpus.size());

  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const corpus::Record& record = corpus.at(i);
    AuditRow row;
    row.id = record.id;
    row.family = record.family;
    row.bug = record.bug;
    const std::string directive = directive_of(i);
    if (directive.empty()) {
      report.rows.push_back(std::move(row));
      continue;
    }

    row.linted = true;
    ++report.linted;
    const LintReport lint = lint_record(linter, directive, record.code, record.id);
    row.errors = lint.errors();
    row.warnings = lint.warnings();
    for (const Diagnostic& d : lint.diagnostics) {
      ++report.rule_counts[d.rule];
      if (std::find(row.rules.begin(), row.rules.end(), d.rule) == row.rules.end())
        row.rules.push_back(d.rule);
    }

    if (lint.clean())
      ++report.clean;
    else if (row.errors > 0)
      ++report.with_errors;
    else
      ++report.with_warnings_only;

    if (!row.bug.empty()) {
      ++report.seeded_bugs;
      row.bug_caught = lint.has_rule(row.bug);
      if (row.bug_caught)
        ++report.bugs_caught;
      else
        ++report.bugs_missed;
    } else if (row.errors > 0) {
      ++report.clean_flagged;
    }
    report.rows.push_back(std::move(row));
  }

  obs::metrics().counter("clpp.lint.audit.records").add(report.records);
  obs::metrics().counter("clpp.lint.audit.flagged").add(report.with_errors);
  obs::metrics().counter("clpp.lint.audit.bugs_caught").add(report.bugs_caught);
  obs::metrics().counter("clpp.lint.audit.bugs_missed").add(report.bugs_missed);
  return report;
}

}  // namespace

double AuditReport::catch_rate() const {
  if (seeded_bugs == 0) return 1.0;
  return static_cast<double>(bugs_caught) / static_cast<double>(seeded_bugs);
}

std::string AuditReport::to_text() const {
  std::string out;
  out += "lint audit (" + subject + "): " + std::to_string(linted) + "/" +
         std::to_string(records) + " records linted\n";
  out += "  clean: " + std::to_string(clean) +
         ", with errors: " + std::to_string(with_errors) +
         ", warnings only: " + std::to_string(with_warnings_only) + "\n";
  if (seeded_bugs > 0) {
    out += "  seeded bugs: " + std::to_string(seeded_bugs) + " (caught " +
           std::to_string(bugs_caught) + ", missed " + std::to_string(bugs_missed) +
           ", catch rate " +
           std::to_string(static_cast<int>(catch_rate() * 100.0 + 0.5)) + "%)\n";
    out += "  clean labels flagged with errors: " + std::to_string(clean_flagged) + "\n";
  }
  if (!rule_counts.empty()) {
    out += "  firings by rule:\n";
    for (const auto& [rule_id, count] : rule_counts)
      out += "    " + rule_id + ": " + std::to_string(count) + "\n";
  }
  return out;
}

Json AuditReport::to_json() const {
  Json doc = Json::object();
  doc["subject"] = subject;
  doc["records"] = records;
  doc["linted"] = linted;
  doc["clean"] = clean;
  doc["with_errors"] = with_errors;
  doc["with_warnings_only"] = with_warnings_only;
  doc["seeded_bugs"] = seeded_bugs;
  doc["bugs_caught"] = bugs_caught;
  doc["bugs_missed"] = bugs_missed;
  doc["clean_flagged"] = clean_flagged;
  doc["catch_rate"] = catch_rate();
  Json rules = Json::object();
  for (const auto& [rule_id, count] : rule_counts) rules[rule_id] = count;
  doc["rule_counts"] = std::move(rules);
  Json rows_json = Json::array();
  for (const AuditRow& row : rows) {
    if (!row.linted) continue;
    Json r = Json::object();
    r["id"] = row.id;
    r["family"] = row.family;
    if (!row.bug.empty()) {
      r["bug"] = row.bug;
      r["bug_caught"] = row.bug_caught;
    }
    r["errors"] = row.errors;
    r["warnings"] = row.warnings;
    Json fired = Json::array();
    for (const std::string& rule_id : row.rules) fired.push_back(rule_id);
    r["rules"] = std::move(fired);
    rows_json.push_back(std::move(r));
  }
  doc["rows"] = std::move(rows_json);
  return doc;
}

AuditReport audit_labels(const corpus::Corpus& corpus, const Linter& linter) {
  return run_audit(corpus, linter, "labels", [&](std::size_t i) {
    const corpus::Record& record = corpus.at(i);
    return record.has_directive ? record.directive_text : std::string{};
  });
}

AuditReport audit_predictions(const corpus::Corpus& corpus,
                              const std::vector<std::string>& predictions,
                              const Linter& linter) {
  CLPP_CHECK_MSG(predictions.size() == corpus.size(),
                 "audit_predictions: one prediction per record required");
  return run_audit(corpus, linter, "predictions",
                   [&](std::size_t i) { return predictions[i]; });
}

}  // namespace clpp::lint
