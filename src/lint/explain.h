// Dependence-proof explanations: why the engine judged each loop the way
// it did.
//
// `clpp-lint --explain` does not need a directive to check — it walks every
// `for` loop of the translation unit (nested loops included), runs the
// dependence analyzer on each, and renders the per-pair decision provenance
// the v2 engine records (analysis::PairProvenance): which test of the
// ZIV / strong-SIV / GCD / Banerjee hierarchy decided each subscript pair,
// the direction vector, and the pinned distance when one exists. The same
// data backs the machine-readable `clpp.explain.v1` document.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/depend.h"
#include "frontend/ast.h"
#include "frontend/pragma.h"
#include "support/json.h"

namespace clpp::lint {

/// Proof trace for one loop of the unit.
struct LoopExplanation {
  int line = 0;                // `for` keyword position (0 = unpositioned)
  int depth = 0;               // nesting depth within the unit (0 = outermost)
  std::string induction;       // empty when non-canonical
  bool canonical = false;
  bool parallelizable = false;
  bool bailed = false;
  bool exact = false;          // verdict is a proof, not a conservative default
  std::optional<long long> trip_count;
  std::vector<std::string> notes;
  std::vector<analysis::PairProvenance> pairs;
  std::vector<std::string> private_candidates;
  std::vector<frontend::Reduction> reductions;
};

/// Analyzes every `for` loop in `unit` (document order, nested included).
std::vector<LoopExplanation> explain_unit(
    const frontend::Node& unit,
    const analysis::AnalyzerOptions& options);

/// Human rendering: one block per loop, one line per tested pair.
std::string render_explanations(const std::string& file,
                                const std::vector<LoopExplanation>& loops);

/// `clpp.explain.v1` document over the same data.
Json explanations_json(const std::string& file,
                       const std::vector<LoopExplanation>& loops);

}  // namespace clpp::lint
