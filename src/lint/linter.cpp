#include "lint/linter.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/accesses.h"
#include "analysis/loopinfo.h"
#include "analysis/sideeffects.h"
#include "frontend/parser.h"
#include "frontend/pragma.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "s2s/compiler.h"

namespace clpp::lint {

using analysis::Access;
using analysis::AccessSet;
using analysis::CallEffect;
using frontend::Node;
using frontend::NodeKind;
using frontend::OmpDirective;

namespace {

SourceRange token_range(int line, int column, std::size_t length) {
  if (line <= 0) return {};
  const int len = length > 0 ? static_cast<int>(length) : 1;
  return {line, column, line, column + len - 1};
}

/// Range of the whole "#pragma ..." line (node text excludes the '#').
SourceRange pragma_range(const Node& pragma) {
  return token_range(pragma.line, pragma.column, pragma.text.size() + 1);
}

/// Range anchored at a statement's keyword/operator token.
SourceRange node_range(const Node& node) {
  std::size_t length = node.text.size();
  if (node.kind == NodeKind::kFor) length = 3;
  return token_range(node.line, node.column, length);
}

/// Range of the first positioned write of `name`, else `fallback`.
SourceRange first_write_range(const AccessSet& accesses, const std::string& name,
                              SourceRange fallback) {
  for (const Access& a : accesses.accesses)
    if (a.variable == name && a.is_write && a.site && a.site->line > 0)
      return token_range(a.site->line, a.site->column, name.size());
  return fallback;
}

/// Range of the first direct call to `callee` in `body`, else `fallback`.
SourceRange call_site_range(const Node& body, const std::string& callee,
                            SourceRange fallback) {
  SourceRange found = fallback;
  bool done = false;
  frontend::walk(body, [&](const Node& node, int) {
    if (done || node.kind != NodeKind::kFuncCall || node.children.empty()) return;
    const Node& target = node.child(0);
    if (target.kind == NodeKind::kID && target.text == callee && target.line > 0) {
      found = token_range(target.line, target.column, callee.size());
      done = true;
    }
  });
  return found;
}

bool contains(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

void erase_name(std::vector<std::string>& names, const std::string& name) {
  names.erase(std::remove(names.begin(), names.end(), name), names.end());
}

std::string describe_effect(CallEffect effect) {
  switch (effect) {
    case CallEffect::kIo:
      return "performs I/O; output interleaves nondeterministically across threads";
    case CallEffect::kAllocates:
      return "allocates or frees memory; heap calls serialize and must not race";
    case CallEffect::kWritesArgs:
      return "may write memory reachable through its arguments";
    case CallEffect::kUnknown:
      return "has unknown side effects (no body available, not whitelisted)";
    case CallEffect::kPure:
      break;
  }
  return "is pure";
}

}  // namespace

analysis::AnalyzerOptions lint_analyzer_options() {
  analysis::AnalyzerOptions options;
  options.assume_unknown_calls_pure = true;
  options.recognize_reduction = true;
  options.recognize_minmax_reduction = true;
  options.bail_on_struct_access = true;
  options.suggest_dynamic_schedule = false;
  options.min_trip_count = 0;  // small-trip-count rule handles profitability
  return options;
}

Linter::Linter(LintOptions options) : options_(std::move(options)) {}

LintReport Linter::lint_source(const std::string& source, std::string file) const {
  frontend::NodePtr unit;
  try {
    unit = frontend::parse_snippet(source);
  } catch (const ParseError& e) {
    LintReport report;
    report.file = std::move(file);
    report.diagnostics.push_back({rule::kParseError, Severity::kError,
                                  token_range(1, 1, 1),
                                  std::string("input does not parse: ") + e.what(),
                                  {},
                                  {}});
    return report;
  }
  return lint_unit(*unit, std::move(file));
}

LintReport Linter::lint_unit(const Node& unit, std::string file) const {
  CLPP_TRACE_SPAN("lint.unit");
  LintReport report;
  report.file = std::move(file);

  // Every statement list (top level and nested compounds) can host a
  // directive + loop pair.
  frontend::walk(unit, [&](const Node& scope, int) {
    if (scope.kind != NodeKind::kTranslationUnit && scope.kind != NodeKind::kCompound)
      return;
    for (std::size_t i = 0; i < scope.children.size(); ++i) {
      const Node& item = *scope.children[i];
      if (item.kind != NodeKind::kPragma || !frontend::is_omp_pragma(item.text))
        continue;
      OmpDirective directive;
      try {
        directive = frontend::parse_omp_pragma(item.text);
      } catch (const ParseError&) {
        continue;  // not a directive we model; stay silent
      }
      if (!directive.is_loop_directive()) continue;
      const Node* stmt = nullptr;
      for (std::size_t j = i + 1; j < scope.children.size(); ++j) {
        if (scope.children[j]->kind == NodeKind::kPragma) continue;
        stmt = scope.children[j].get();
        break;
      }
      lint_pair(unit, pragma_range(item), directive, stmt, report);
    }
  });

  obs::metrics().counter("clpp.lint.loops_linted").add(report.loops_checked);
  obs::metrics().counter("clpp.lint.diagnostics").add(report.diagnostics.size());
  obs::metrics().counter("clpp.lint.errors").add(report.errors());
  obs::metrics().counter("clpp.lint.warnings").add(report.warnings());
  return report;
}

LintReport Linter::lint_loop(const Node& unit, const OmpDirective& directive,
                             const Node* loop, std::string file) const {
  CLPP_TRACE_SPAN("lint.unit");
  LintReport report;
  report.file = std::move(file);
  // The directive line itself has no position in the parsed unit; anchor
  // directive-level findings at the top of the snippet.
  lint_pair(unit, token_range(1, 1, directive.to_string().size()), directive, loop,
            report);
  obs::metrics().counter("clpp.lint.loops_linted").add(report.loops_checked);
  obs::metrics().counter("clpp.lint.diagnostics").add(report.diagnostics.size());
  obs::metrics().counter("clpp.lint.errors").add(report.errors());
  obs::metrics().counter("clpp.lint.warnings").add(report.warnings());
  return report;
}

void Linter::lint_pair(const Node& unit, SourceRange at_pragma,
                       const OmpDirective& directive, const Node* stmt,
                       LintReport& report) const {
  CLPP_TRACE_SPAN("lint.loop");
  auto add = [&](const char* rule_id, Severity severity, SourceRange range,
                 std::string message, std::string fix = {}) {
    if (!options_.emit_fixits) fix.clear();
    if (!fix.empty()) obs::metrics().counter("clpp.lint.fixits").add();
    report.diagnostics.push_back(
        {rule_id, severity, range, std::move(message), std::move(fix), {}});
  };

  if (stmt == nullptr || stmt->kind != NodeKind::kFor) {
    add(rule::kNonCanonicalLoop, Severity::kError, at_pragma,
        "worksharing-loop directive is not followed by a for loop");
    return;
  }
  const Node& loop = *stmt;
  const SourceRange at_loop = node_range(loop);
  ++report.loops_checked;

  const auto canonical = analysis::canonicalize(loop);
  if (!canonical) {
    add(rule::kNonCanonicalLoop, Severity::kError, at_loop,
        "loop is not in OpenMP canonical form (single integer induction, "
        "invariant bound, constant step)");
    return;
  }
  const Node& body = loop.child(3);
  if (analysis::has_early_exit(body)) {
    add(rule::kNonCanonicalLoop, Severity::kError, at_loop,
        "loop body exits early (break/goto/return); iterations cannot be "
        "shared out");
    return;
  }

  const analysis::SideEffectOracle oracle(unit);
  const analysis::DependenceAnalyzer analyzer(oracle, options_.analyzer);
  const analysis::LoopVerdict verdict = analyzer.analyze(loop);
  const AccessSet accesses = analysis::collect_accesses(body);

  // --- unknown-call-effect: every non-pure direct callee, once each.
  std::set<std::string> reported_calls;
  for (const std::string& callee : accesses.hazards.called_functions) {
    if (!reported_calls.insert(callee).second) continue;
    const CallEffect effect = oracle.effect_of(callee);
    if (effect == CallEffect::kPure) continue;
    add(rule::kUnknownCallEffect, Severity::kWarning,
        call_site_range(body, callee, at_loop),
        "call to '" + callee + "' inside the parallel loop " +
            describe_effect(effect));
  }

  // --- conservative aliasing hazards the dependence test cannot see past.
  if (accesses.hazards.pointer_deref_write)
    add(rule::kLoopCarried, Severity::kWarning, at_loop,
        "cannot prove iterations independent: loop writes through a pointer "
        "dereference");
  if (accesses.hazards.function_pointer_call)
    add(rule::kLoopCarried, Severity::kWarning, at_loop,
        "cannot prove iterations independent: call through a function pointer");

  // A bare `omp simd` (no worksharing) has its own legality rules: carried
  // dependences route to the simd-* family instead of loop-carried-dependence,
  // because a known distance >= 2 is *legal* under a small enough safelen.
  const bool pure_simd = directive.simd && !directive.for_loop;

  // --- small-trip-count (fork/join cost — worksharing only).
  if (!pure_simd && verdict.trip_count &&
      *verdict.trip_count < options_.small_trip_threshold)
    add(rule::kSmallTripCount, Severity::kWarning, at_loop,
        "static trip count " + std::to_string(*verdict.trip_count) +
            " is below the profitability threshold (" +
            std::to_string(options_.small_trip_threshold) +
            "); fork/join overhead will dominate");

  // Clause surface the directive already provides.
  std::set<std::string> privatized;
  privatized.insert(canonical->induction);  // worksharing privatizes the iterator
  for (const std::string& n : directive.private_vars) privatized.insert(n);
  for (const std::string& n : directive.firstprivate_vars) privatized.insert(n);
  for (const std::string& n : directive.lastprivate_vars) privatized.insert(n);
  std::set<std::string> reduced;
  for (const frontend::Reduction& r : directive.reductions) reduced.insert(r.variable);
  std::set<std::string> accumulators;
  for (const frontend::Reduction& r : verdict.reductions) accumulators.insert(r.variable);

  // --- loop-carried-dependence / simd-* family: dependences that survive
  // the clauses.
  // Decision provenance for a finding: the first carried provenance record
  // of the same variable (the one that produced the Dependence). Attached
  // to the diagnostic pushed last by `add`.
  auto attach_provenance = [&](const analysis::Dependence& dep,
                               std::size_t before) {
    if (report.diagnostics.size() <= before) return;  // nothing was added
    for (const analysis::PairProvenance& p : verdict.pair_provenance) {
      if (p.array != dep.variable || p.scalar != dep.scalar) continue;
      if (!p.possible || !p.carried) continue;
      report.diagnostics.back().provenance = analysis::provenance_text(p);
      return;
    }
    if (!dep.deciding_test.empty())
      report.diagnostics.back().provenance = dep.deciding_test;
  };
  for (const analysis::Dependence& dep : verdict.dependences) {
    const SourceRange at_dep =
        dep.line > 0 ? token_range(dep.line, dep.column, dep.variable.size())
                     : at_loop;
    const bool scalar = dep.scalar;
    if (scalar && privatized.count(dep.variable)) continue;  // clause cuts the edge
    const std::size_t diags_before = report.diagnostics.size();
    if (pure_simd) {
      if (scalar) {
        if (reduced.count(dep.variable)) {
          add(rule::kSimdReductionMismatch, Severity::kError, at_dep,
              "carried dependence on '" + dep.variable +
                  "' does not match its reduction clause on the simd "
                  "directive; lanes combine incorrectly");
        } else {
          add(rule::kSimdUnsafeDep, Severity::kError, at_dep,
              "loop-carried scalar dependence on '" + dep.variable +
                  "' has distance 1; no safelen makes this loop "
                  "vectorizable");
        }
      } else if (dep.distance && *dep.distance >= 2) {
        const long long d = *dep.distance;
        if (directive.safelen == 0 || directive.safelen > d) {
          frontend::OmpDirective with_safelen = directive;
          with_safelen.safelen = static_cast<int>(d);
          if (directive.safelen == 0)
            add(rule::kSimdMissesSafelen, Severity::kError, at_dep,
                "array dependence on '" + dep.variable + "' has distance " +
                    std::to_string(d) +
                    " but the simd directive declares no safelen; vector "
                    "lengths above " + std::to_string(d) + " are miscompiled",
                with_safelen.to_string());
          else
            add(rule::kSimdUnsafeDep, Severity::kError, at_dep,
                "safelen(" + std::to_string(directive.safelen) +
                    ") exceeds the carried dependence distance " +
                    std::to_string(d) + " on '" + dep.variable + "'",
                with_safelen.to_string());
        }
        // safelen <= d: the declared safelen licenses this dependence.
      } else {
        add(rule::kSimdUnsafeDep, Severity::kError, at_dep,
            "loop-carried array dependence on '" + dep.variable + "' (" +
                dep.detail + ") has distance " +
                (dep.distance ? std::to_string(*dep.distance)
                              : std::string("unknown")) +
                "; no safelen can license it");
      }
      attach_provenance(dep, diags_before);
      continue;
    }
    std::string message;
    if (scalar && reduced.count(dep.variable))
      message = "carried dependence on '" + dep.variable +
                "' does not match its reduction clause; the combined result "
                "will differ from serial execution";
    else if (scalar)
      message = "loop-carried scalar dependence on '" + dep.variable +
                "': each iteration reads the previous iteration's value";
    else
      message = "loop-carried array dependence on '" + dep.variable + "' (" +
                dep.detail + ")";
    add(rule::kLoopCarried, Severity::kError, at_dep, std::move(message));
    attach_provenance(dep, diags_before);
  }

  // Clause-level findings share one fix-it: the fully corrected pragma.
  struct Pending {
    const char* rule_id;
    SourceRange range;
    std::string message;
  };
  std::vector<Pending> pending;
  OmpDirective corrected = directive;

  // --- shared-induction.
  if (contains(directive.shared_vars, canonical->induction)) {
    pending.push_back({rule::kSharedInduction, at_pragma,
                       "induction variable '" + canonical->induction +
                           "' is listed shared(...): every thread would write "
                           "the one shared iterator"});
    erase_name(corrected.shared_vars, canonical->induction);
  }

  // --- missing-private.
  for (const std::string& name : verdict.private_candidates) {
    if (privatized.count(name) || reduced.count(name)) continue;
    pending.push_back({rule::kMissingPrivate,
                       first_write_range(accesses, name, at_pragma),
                       "'" + name +
                           "' is rewritten every iteration but not privatized; "
                           "concurrent writes race"});
    corrected.private_vars.push_back(name);
  }

  // --- missing-reduction (wrong operator counts as missing).
  for (const frontend::Reduction& r : verdict.reductions) {
    const frontend::Reduction* declared = nullptr;
    for (const frontend::Reduction& d : directive.reductions)
      if (d.variable == r.variable) declared = &d;
    if (declared != nullptr && declared->op == r.op) continue;
    const std::string clause =
        "reduction(" + frontend::reduction_op_name(r.op) + ": " + r.variable + ")";
    std::string message;
    if (declared != nullptr)
      message = "reduction operator mismatch on '" + r.variable +
                "': clause declares '" + frontend::reduction_op_name(declared->op) +
                "' but the loop accumulates with '" +
                frontend::reduction_op_name(r.op) + "'";
    else if (privatized.count(r.variable) && r.variable != canonical->induction)
      message = "'" + r.variable +
                "' accumulates across iterations but is only privatized; each "
                "thread's partial result is discarded — use " + clause;
    else
      message = "accumulation over '" + r.variable +
                "' races on the shared scalar; needs " + clause;
    pending.push_back({pure_simd ? rule::kSimdReductionMismatch
                                 : rule::kMissingReduction,
                       first_write_range(accesses, r.variable, at_pragma),
                       std::move(message)});
    corrected.reductions.erase(
        std::remove_if(corrected.reductions.begin(), corrected.reductions.end(),
                       [&](const frontend::Reduction& d) {
                         return d.variable == r.variable;
                       }),
        corrected.reductions.end());
    corrected.reductions.push_back(r);
    erase_name(corrected.private_vars, r.variable);
    erase_name(corrected.firstprivate_vars, r.variable);
    erase_name(corrected.lastprivate_vars, r.variable);
  }

  const std::string fix_text = pending.empty() ? std::string{} : corrected.to_string();
  for (Pending& p : pending)
    add(p.rule_id, Severity::kError, p.range, std::move(p.message), fix_text);

  // --- simd-on-non-innermost: vectorizing an outer loop is rarely intended.
  if (directive.simd) {
    bool has_inner_loop = false;
    frontend::walk(body, [&](const Node& n, int) {
      if (n.kind == NodeKind::kFor) has_inner_loop = true;
    });
    if (has_inner_loop) {
      std::string fix;
      if (directive.for_loop) {
        frontend::OmpDirective dropped = directive;
        dropped.simd = false;
        dropped.safelen = 0;
        dropped.simdlen = 0;
        fix = dropped.to_string();
      }
      add(rule::kSimdNonInnermost, Severity::kWarning, at_loop,
          "simd applies to a loop whose body contains another loop; "
          "vectorize the innermost loop instead",
          std::move(fix));
    }
  }

  // --- uninitialized-private: a private var whose first access reads it.
  for (const std::string& name : directive.private_vars) {
    if (name == canonical->induction) continue;
    if (accumulators.count(name)) continue;  // missing-reduction already fired
    const Access* first = nullptr;
    for (const Access& a : accesses.accesses)
      if (a.variable == name && !a.is_array) {
        first = &a;
        break;
      }
    if (first == nullptr || first->is_write) continue;
    OmpDirective promoted = directive;
    erase_name(promoted.private_vars, name);
    promoted.firstprivate_vars.push_back(name);
    add(rule::kUninitializedPrivate, Severity::kWarning,
        first->site && first->site->line > 0
            ? token_range(first->site->line, first->site->column, name.size())
            : at_pragma,
        "private variable '" + name +
            "' is read before any write in the loop body; private copies "
            "start uninitialized (firstprivate keeps the original value)",
        promoted.to_string());
  }
}

}  // namespace clpp::lint
