// Tests for metrics, dataset encoding, the PragFormer model, and the
// trainer (fast configs; the full experiment shapes live in the benches
// and in pipeline_test).
#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/explain.h"
#include "core/metrics.h"
#include "core/pragformer.h"
#include "core/trainer.h"
#include "tokenize/representation.h"

namespace clpp::core {
namespace {

TEST(Metrics, HandComputedExample) {
  BinaryMetrics m;
  m.tp = 8;
  m.fp = 2;
  m.fn = 4;
  m.tn = 6;
  EXPECT_DOUBLE_EQ(m.precision(), 0.8);
  EXPECT_NEAR(m.recall(), 8.0 / 12.0, 1e-12);
  EXPECT_NEAR(m.f1(), 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0), 1e-12);
  EXPECT_DOUBLE_EQ(m.accuracy(), 14.0 / 20.0);
}

TEST(Metrics, DegenerateCasesAreZeroNotNan) {
  BinaryMetrics m;  // all zero
  EXPECT_DOUBLE_EQ(m.precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.recall(), 0.0);
  EXPECT_DOUBLE_EQ(m.f1(), 0.0);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
}

TEST(Metrics, FromArrays) {
  const std::vector<int> pred = {1, 1, 0, 0, 1};
  const std::vector<int> truth = {1, 0, 0, 1, 1};
  const BinaryMetrics m = compute_metrics(pred, truth);
  EXPECT_EQ(m.tp, 2u);
  EXPECT_EQ(m.fp, 1u);
  EXPECT_EQ(m.fn, 1u);
  EXPECT_EQ(m.tn, 1u);
}

TEST(Metrics, ProbaThreshold) {
  const std::vector<float> probs = {0.9f, 0.4f, 0.6f};
  const std::vector<std::int32_t> labels = {1, 1, 0};
  const BinaryMetrics m = compute_metrics_proba(probs, labels);
  EXPECT_EQ(m.tp, 1u);
  EXPECT_EQ(m.fn, 1u);
  EXPECT_EQ(m.fp, 1u);
}

TEST(Metrics, MismatchedSizesRejected) {
  const std::vector<int> pred = {1};
  const std::vector<int> truth = {1, 0};
  EXPECT_THROW(compute_metrics(pred, truth), InvalidArgument);
}

corpus::Corpus tiny_corpus() {
  corpus::Corpus corpus;
  auto add = [&](const std::string& id, const std::string& code, bool directive,
                 const std::string& text = "#pragma omp parallel for") {
    corpus::Record r;
    r.id = id;
    r.family = "test";
    r.code = code;
    r.has_directive = directive;
    if (directive) r.directive_text = text;
    r.refresh_labels();
    corpus.add(std::move(r));
  };
  add("p0", "for (i = 0; i < n; i++) a[i] = b[i];", true);
  add("p1", "for (i = 0; i < n; i++) s += a[i];", true,
      "#pragma omp parallel for reduction(+: s)");
  add("n0", "for (i = 0; i < n; i++) printf(\"%d\", a[i]);", false);
  add("n1", "for (i = 1; i < n; i++) a[i] = a[i - 1];", false);
  return corpus;
}

TEST(Dataset, EncodesWithLabels) {
  const corpus::Corpus corpus = tiny_corpus();
  const std::vector<std::size_t> idx = {0, 1, 2, 3};
  const auto docs = tokenize_records(corpus, idx, tokenize::Representation::kText);
  const auto vocab = tokenize::Vocabulary::build(docs);
  const EncodedDataset ds = encode_dataset(corpus, idx, corpus::Task::kDirective,
                                           tokenize::Representation::kText, vocab, 64);
  ASSERT_EQ(ds.size(), 4u);
  EXPECT_EQ(ds.labels, (std::vector<std::int32_t>{1, 1, 0, 0}));
  for (const auto& seq : ds.sequences) {
    EXPECT_EQ(seq[0], tokenize::Vocabulary::kCls);
    EXPECT_LE(seq.size(), 64u);
  }
}

TEST(Dataset, ReductionTaskLabels) {
  const corpus::Corpus corpus = tiny_corpus();
  const std::vector<std::size_t> idx = {0, 1};  // positives only
  const auto docs = tokenize_records(corpus, idx, tokenize::Representation::kText);
  const auto vocab = tokenize::Vocabulary::build(docs);
  const EncodedDataset ds = encode_dataset(corpus, idx, corpus::Task::kReduction,
                                           tokenize::Representation::kText, vocab, 64);
  EXPECT_EQ(ds.labels, (std::vector<std::int32_t>{0, 1}));
}

TEST(Dataset, PackBatchGeometry) {
  EncodedDataset ds;
  ds.sequences = {{1, 5, 6}, {1, 7}, {1, 8, 9, 10, 11}};
  ds.labels = {1, 0, 1};
  const std::vector<std::size_t> idx = {0, 1, 2};
  const nn::TokenBatch batch = pack_batch(ds, idx, 4);
  EXPECT_EQ(batch.batch, 3u);
  EXPECT_EQ(batch.seq, 4u);  // longest clamped to max_seq
  EXPECT_EQ(batch.lengths, (std::vector<int>{3, 2, 4}));
  EXPECT_EQ(batch.id(1, 1), 7);
  EXPECT_EQ(batch.id(1, 2), 0);  // pad
  EXPECT_EQ(batch_labels(ds, idx), (std::vector<std::int32_t>{1, 0, 1}));
}

PragFormerConfig small_config(std::size_t vocab) {
  PragFormerConfig config;
  config.encoder.vocab_size = vocab;
  config.encoder.max_seq = 32;
  config.encoder.dim = 16;
  config.encoder.heads = 2;
  config.encoder.layers = 1;
  config.encoder.ffn_dim = 24;
  config.encoder.dropout = 0.0f;
  config.head_dropout = 0.0f;
  return config;
}

TEST(PragFormerModel, LogitShapeAndProba) {
  Rng rng(1);
  PragFormer model(small_config(20), rng);
  nn::TokenBatch batch;
  batch.batch = 2;
  batch.seq = 4;
  batch.ids = {1, 5, 6, 0, 1, 7, 0, 0};
  batch.lengths = {3, 2};
  const Tensor out = model.logits(batch, false);
  EXPECT_EQ(out.shape(), (std::vector<std::size_t>{2, 2}));
  const auto probs = model.predict_proba(batch);
  ASSERT_EQ(probs.size(), 2u);
  for (float p : probs) {
    EXPECT_GT(p, 0.0f);
    EXPECT_LT(p, 1.0f);
  }
}

TEST(PragFormerModel, ParameterCountIncludesHead) {
  Rng rng(2);
  PragFormer model(small_config(20), rng);
  const auto params = model.parameters();
  bool has_head = false;
  for (const auto* p : params) has_head |= p->name.rfind("head.", 0) == 0;
  EXPECT_TRUE(has_head);
  // vocab 20 x dim 16 + pos 32x16 + 1 block + head ≈ 3.1k parameters.
  EXPECT_GT(nn::parameter_count(params), 3000u);
}

TEST(PragFormerModel, PretrainedEncoderRestores) {
  Rng rng(3);
  PragFormer donor(small_config(20), rng);
  std::map<std::string, Tensor> checkpoint;
  for (const auto* p : donor.parameters())
    if (p->name.rfind("encoder.", 0) == 0) checkpoint.emplace(p->name, p->value);

  Rng rng2(999);
  PragFormer receiver(small_config(20), rng2);
  const std::size_t restored = receiver.load_pretrained_encoder(checkpoint);
  EXPECT_EQ(restored, checkpoint.size());
}

TEST(Trainer, OverfitsTinySeparableTask) {
  // Positive sequences contain token 5, negatives token 6.
  EncodedDataset train;
  Rng data_rng(4);
  for (int i = 0; i < 64; ++i) {
    const bool pos = i % 2 == 0;
    std::vector<std::int32_t> seq = {1};
    for (int t = 0; t < 6; ++t)
      seq.push_back(static_cast<std::int32_t>(7 + data_rng.index(8)));
    seq[1 + data_rng.index(6)] = pos ? 5 : 6;
    train.sequences.push_back(std::move(seq));
    train.labels.push_back(pos);
  }
  EncodedDataset val = train;

  Rng rng(5);
  PragFormer model(small_config(16), rng);
  TrainConfig config;
  config.epochs = 12;
  config.batch_size = 16;
  config.lr = 2e-3f;
  const auto curves = train_classifier(model, train, val, config, rng);
  ASSERT_EQ(curves.size(), 12u);
  EXPECT_GT(curves.back().val_accuracy, 0.95f);
  EXPECT_LT(curves.back().train_loss, curves.front().train_loss);
  const BinaryMetrics m = evaluate_metrics(model, val);
  EXPECT_GT(m.f1(), 0.95);
}

TEST(Trainer, CurvesHaveOneEntryPerEpoch) {
  EncodedDataset train;
  train.sequences = {{1, 5}, {1, 6}};
  train.labels = {1, 0};
  Rng rng(6);
  PragFormer model(small_config(16), rng);
  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 2;
  const auto curves = train_classifier(model, train, train, config, rng);
  ASSERT_EQ(curves.size(), 3u);
  for (std::size_t e = 0; e < curves.size(); ++e) EXPECT_EQ(curves[e].epoch, e);
}

TEST(Trainer, BestEpochSelectionRestoresBestValidationLoss) {
  // Tiny noisy task trained well past convergence: without selection the
  // final model is whatever the last epoch left; with selection it must
  // score (approximately) the best validation loss seen on any epoch.
  EncodedDataset train;
  Rng data_rng(8);
  for (int i = 0; i < 48; ++i) {
    const bool pos = i % 2 == 0;
    std::vector<std::int32_t> seq = {1, pos ? 5 : 6};
    for (int t = 0; t < 4; ++t)
      seq.push_back(static_cast<std::int32_t>(7 + data_rng.index(8)));
    train.sequences.push_back(std::move(seq));
    // 15% label noise forces genuine overfitting room.
    train.labels.push_back(data_rng.chance(0.15) ? !pos : pos);
  }
  EncodedDataset val = train;

  Rng rng(9);
  PragFormer model(small_config(16), rng);
  TrainConfig config;
  config.epochs = 15;
  config.batch_size = 16;
  config.lr = 3e-3f;
  config.select_best_epoch = true;
  const auto curves = train_classifier(model, train, val, config, rng);
  float best = curves.front().val_loss;
  for (const auto& c : curves) best = std::min(best, c.val_loss);
  const auto [final_loss, final_acc] = evaluate_loss_accuracy(model, val);
  (void)final_acc;
  EXPECT_LE(final_loss, best + 1e-4f);
}

TEST(Explain, AttentionRowsAreDistributions) {
  Rng rng(10);
  PragFormerConfig config = small_config(0);
  // Build a vocab from the snippet itself so ids are in range.
  const std::string code = "for (i = 0; i < n; i++) a[i] = b[i] + c[i];";
  const auto tokens = tokenize::tokenize(code, tokenize::Representation::kText);
  const auto vocab = tokenize::Vocabulary::build({tokens});
  config.encoder.vocab_size = vocab.size();
  PragFormer model(config, rng);

  const Explanation explanation = explain_prediction(
      model, vocab, tokenize::Representation::kText, 32, code);
  ASSERT_FALSE(explanation.attention.empty());
  EXPECT_EQ(explanation.attention.size(), explanation.tokens.size());
  EXPECT_EQ(explanation.tokens[0], "<cls>");
  float total = 0.0f;
  for (const auto& t : explanation.attention) total += t.weight;
  EXPECT_NEAR(total, 1.0f, 1e-4f);  // head-averaged softmax row
  EXPECT_GT(explanation.p_positive, 0.0f);
  EXPECT_LT(explanation.p_positive, 1.0f);

  const auto top = explanation.top_tokens(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_GE(top[0].weight, top[1].weight);
  EXPECT_GE(top[1].weight, top[2].weight);
  for (const auto& t : top) EXPECT_NE(t.position, 0u);  // <cls> excluded

  const std::string art = explanation.ascii();
  EXPECT_NE(art.find("p(positive)"), std::string::npos);
  EXPECT_NE(art.find("#"), std::string::npos);
}

TEST(Trainer, PredictDatasetMatchesEvaluate) {
  EncodedDataset data;
  data.sequences = {{1, 5, 7}, {1, 6}, {1, 9, 9, 9}};
  data.labels = {1, 0, 1};
  Rng rng(7);
  PragFormer model(small_config(16), rng);
  const auto probs = predict_dataset(model, data);
  ASSERT_EQ(probs.size(), 3u);
  const BinaryMetrics via_probs = compute_metrics_proba(probs, data.labels);
  const BinaryMetrics direct = evaluate_metrics(model, data);
  EXPECT_EQ(via_probs.tp, direct.tp);
  EXPECT_EQ(via_probs.fp, direct.fp);
}

}  // namespace
}  // namespace clpp::core
