// Unit tests for clpp::support (rng, strings, cli, json, csv, table, plot).
#include <gtest/gtest.h>

#include <set>

#include <atomic>
#include <numeric>

#include "support/cli.h"
#include "support/csv.h"
#include "support/histogram.h"
#include "support/json.h"
#include "support/parallel.h"
#include "support/plot.h"
#include "support/rng.h"
#include "support/stopwatch.h"
#include "support/strings.h"
#include "support/table.h"

namespace clpp {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(Rng, RangeRejectsInvertedBounds) {
  Rng rng(5);
  EXPECT_THROW(rng.range(3, 2), InvalidArgument);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(6);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng rng(7);
  const std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.weighted(w), 1u);
}

TEST(Rng, WeightedProportions) {
  Rng rng(8);
  const std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) ones += (rng.weighted(w) == 1);
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.03);
}

TEST(Rng, WeightedRejectsAllZero) {
  Rng rng(9);
  const std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(rng.weighted(w), InvalidArgument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.split();
  EXPECT_NE(parent(), child());
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  for  (i=0;  \n i<n; ) ");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "for");
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"a", "b", "c"}, "::"), "a::b::c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, TrimBothSides) { EXPECT_EQ(trim("  x \t\n"), "x"); }

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("#pragma omp", "#pragma"));
  EXPECT_FALSE(starts_with("omp", "#pragma"));
  EXPECT_TRUE(ends_with("loop.c", ".c"));
  EXPECT_FALSE(ends_with(".c", "loop.c"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("abc", "", "x"), "abc");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(28374), "28,374");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
  EXPECT_EQ(with_commas(999), "999");
}

TEST(Strings, PadHelpers) {
  EXPECT_EQ(pad_left("x", 3), "  x");
  EXPECT_EQ(pad_right("x", 3), "x  ");
  EXPECT_EQ(pad_left("long", 2), "long");
}

TEST(Cli, ParsesTypedOptions) {
  ArgParser parser("prog", "test");
  parser.add_string("scale", "quick", "scale");
  parser.add_int("seed", 2023, "seed");
  parser.add_double("lr", 0.001, "learning rate");
  parser.add_flag("verbose", "verbosity");
  const char* argv[] = {"prog", "--scale=paper", "--seed", "7", "--verbose"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_EQ(parser.get_string("scale"), "paper");
  EXPECT_EQ(parser.get_int("seed"), 7);
  EXPECT_DOUBLE_EQ(parser.get_double("lr"), 0.001);
  EXPECT_TRUE(parser.get_flag("verbose"));
}

TEST(Cli, RejectsUnknownOption) {
  ArgParser parser("prog", "test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(parser.parse(2, argv), InvalidArgument);
}

TEST(Cli, RejectsBadInteger) {
  ArgParser parser("prog", "test");
  parser.add_int("n", 1, "count");
  const char* argv[] = {"prog", "--n", "abc"};
  EXPECT_THROW(parser.parse(3, argv), InvalidArgument);
}

TEST(Cli, CollectsPositional) {
  ArgParser parser("prog", "test");
  const char* argv[] = {"prog", "file1.c", "file2.c"};
  ASSERT_TRUE(parser.parse(3, argv));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "file1.c");
}

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e1").as_double(), -25.0);
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("\"hi\\nthere\"").as_string(), "hi\nthere");
}

TEST(Json, ObjectRoundTrip) {
  Json obj = Json::object();
  obj["name"] = Json{"for (i=0;i<n;i++) a[i]=i;"};
  obj["label"] = Json{true};
  obj["count"] = Json{13139};
  const Json parsed = Json::parse(obj.dump());
  EXPECT_EQ(parsed.at("name").as_string(), "for (i=0;i<n;i++) a[i]=i;");
  EXPECT_TRUE(parsed.at("label").as_bool());
  EXPECT_EQ(parsed.at("count").as_int(), 13139);
}

TEST(Json, NestedArrays) {
  const Json v = Json::parse(R"([1, [2, 3], {"k": [4]}])");
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.at(1).at(1).as_int(), 3);
  EXPECT_EQ(v.at(2).at("k").at(0).as_int(), 4);
}

TEST(Json, RejectsMalformed) {
  EXPECT_THROW(Json::parse("{"), ParseError);
  EXPECT_THROW(Json::parse("[1,]2"), ParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), ParseError);
  EXPECT_THROW(Json::parse("01x"), ParseError);
}

TEST(Json, EscapesControlCharacters) {
  const std::string dumped = Json{std::string("a\tb\"c")}.dump();
  EXPECT_EQ(Json::parse(dumped).as_string(), "a\tb\"c");
}

TEST(Json, GettersWithFallback) {
  const Json obj = Json::parse(R"({"a": 1})");
  EXPECT_EQ(obj.get_int("a", 9), 1);
  EXPECT_EQ(obj.get_int("missing", 9), 9);
  EXPECT_EQ(obj.get_string("missing", "d"), "d");
}

TEST(Csv, QuotesSpecialFields) {
  CsvWriter csv({"code", "label"});
  csv.add_row({"for (i=0, j=1;;)", "yes"});
  csv.add_row({"say \"hi\"", "no"});
  const std::string text = csv.str();
  EXPECT_NE(text.find("\"for (i=0, j=1;;)\""), std::string::npos);
  EXPECT_NE(text.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, RejectsArityMismatch) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, AlignsColumns) {
  TextTable t({"", "Precision", "Recall", "F1"});
  t.add_row({"PragFormer", "0.84", "0.85", "0.84"});
  t.add_row({"ComPar", "0.35", "0.52", "0.43"});
  const std::string text = t.str();
  EXPECT_NE(text.find("| PragFormer "), std::string::npos);
  EXPECT_NE(text.find("|---"), std::string::npos);
  // Every line has equal width.
  const auto lines = split(text, '\n');
  for (const auto& line : lines) {
    if (!line.empty()) {
      EXPECT_EQ(line.size(), lines[0].size());
    }
  }
}

TEST(Plot, RendersAllSeries) {
  AsciiPlot plot("Accuracy", "epoch", "val acc");
  plot.add_series("Text", {0.5, 0.7, 0.87});
  plot.add_series("AST", {0.5, 0.6, 0.82});
  const std::string text = plot.str();
  EXPECT_NE(text.find("*=Text"), std::string::npos);
  EXPECT_NE(text.find("o=AST"), std::string::npos);
}

TEST(Plot, RejectsLengthMismatch) {
  AsciiPlot plot("t", "x", "y");
  plot.add_series("a", {1, 2});
  EXPECT_THROW(plot.add_series("b", {1}), InvalidArgument);
}

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
               /*grain=*/16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, SerialBelowGrain) {
  // Below the grain the helper must run inline on the calling thread in
  // order (we detect order by writing an increasing counter).
  std::vector<int> order;
  parallel_for(8, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               /*grain=*/1024);
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(Parallel, ZeroIterationsIsANoop) {
  bool ran = false;
  parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch timer;
  const double t0 = timer.seconds();
  EXPECT_GE(t0, 0.0);
  // Busy-wait a hair; elapsed must be monotonic.
  std::atomic<long> sink{0};
  for (int i = 0; i < 100000; ++i) sink.fetch_add(i, std::memory_order_relaxed);
  EXPECT_GT(sink.load(), 0);
  EXPECT_GE(timer.seconds(), t0);
  timer.reset();
  EXPECT_LT(timer.seconds(), 1.0);
  EXPECT_GE(timer.millis(), 0.0);
}

TEST(HistogramTest, CountsAndMoments) {
  Histogram h(0, 10, 10);
  h.add_all({1, 2, 3, 4, 5});
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins) {
  Histogram h(0, 10, 10);
  h.add(-100);
  h.add(1000);
  EXPECT_EQ(h.bins().front(), 1u);
  EXPECT_EQ(h.bins().back(), 1u);
  // True extrema are still reported.
  EXPECT_DOUBLE_EQ(h.min(), -100.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(HistogramTest, QuantilesAreMonotone) {
  Histogram h(0, 100, 50);
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) h.add(rng.uniform(0.0f, 100.0f));
  const double q25 = h.quantile(0.25);
  const double q50 = h.quantile(0.50);
  const double q90 = h.quantile(0.90);
  EXPECT_LT(q25, q50);
  EXPECT_LT(q50, q90);
  EXPECT_NEAR(q50, 50.0, 5.0);  // uniform distribution median
}

TEST(HistogramTest, AsciiRendersEveryBin) {
  Histogram h(0, 4, 4);
  h.add_all({0.5, 1.5, 1.6, 2.5});
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(HistogramTest, RejectsBadConstructionAndEmptyQuantile) {
  EXPECT_THROW(Histogram(5, 5), InvalidArgument);
  EXPECT_THROW(Histogram(0, 1, 0), InvalidArgument);
  Histogram empty(0, 1);
  EXPECT_THROW(empty.quantile(0.5), InvalidArgument);
  Histogram h(0, 1);
  h.add(0.5);
  EXPECT_THROW(h.quantile(1.5), InvalidArgument);
}

TEST(Table, NumFormatsFixedDigits) {
  EXPECT_EQ(TextTable::num(0.845, 2), "0.84");
  EXPECT_EQ(TextTable::num(0.5, 1), "0.5");
  EXPECT_EQ(TextTable::num(2.0), "2.00");
}

}  // namespace
}  // namespace clpp
