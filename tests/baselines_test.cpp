// Tests for the BoW featurizer and logistic-regression baseline.
#include <gtest/gtest.h>

#include "baselines/bow.h"
#include "tokenize/representation.h"

namespace clpp::baselines {
namespace {

using tokenize::Vocabulary;

TEST(Bow, CountsTokens) {
  const Vocabulary v = Vocabulary::build({{"for", "i", "a"}});
  const SparseVector x = bow_features({"for", "i", "i", "a"}, v);
  ASSERT_EQ(x.size(), 3u);
  // Sorted by id; find the count of "i".
  float i_count = 0;
  for (const auto& [id, count] : x)
    if (id == v.id_of("i")) i_count = count;
  EXPECT_FLOAT_EQ(i_count, 2.0f);
}

TEST(Bow, UnknownTokensCollapseToUnk) {
  const Vocabulary v = Vocabulary::build({{"a"}});
  const SparseVector x = bow_features({"zzz", "yyy"}, v);
  ASSERT_EQ(x.size(), 1u);
  EXPECT_EQ(x[0].first, Vocabulary::kUnk);
  EXPECT_FLOAT_EQ(x[0].second, 2.0f);
}

TEST(Bow, OrderInvariance) {
  const Vocabulary v = Vocabulary::build({{"a", "b", "c"}});
  EXPECT_EQ(bow_features({"a", "b", "c"}, v), bow_features({"c", "b", "a"}, v));
}

TEST(Logistic, LearnsLinearlySeparableData) {
  // y = 1 iff feature 4 present.
  std::vector<SparseVector> xs;
  std::vector<std::int32_t> ys;
  Rng data_rng(1);
  for (int i = 0; i < 200; ++i) {
    const bool pos = data_rng.chance(0.5);
    SparseVector x;
    x.emplace_back(5, data_rng.uniform(0.0f, 2.0f));  // noise feature
    if (pos) x.emplace_back(4, 1.0f);
    std::sort(x.begin(), x.end());
    xs.push_back(std::move(x));
    ys.push_back(pos);
  }
  LogisticRegression model(8);
  Rng rng(2);
  model.train(xs, ys, LogisticConfig{.epochs = 50}, rng);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    correct += model.predict(xs[i]) == ys[i];
  EXPECT_GT(correct, 190u);
}

TEST(Logistic, LossDecreasesWithTraining) {
  std::vector<SparseVector> xs = {{{0, 1.0f}}, {{1, 1.0f}}};
  std::vector<std::int32_t> ys = {0, 1};
  LogisticRegression model(2);
  const float before = model.loss(xs, ys);
  Rng rng(3);
  model.train(xs, ys, LogisticConfig{.epochs = 100, .lr = 0.5f}, rng);
  EXPECT_LT(model.loss(xs, ys), before * 0.5f);
}

TEST(Logistic, CannotLearnOrderSensitivePattern) {
  // The structural limitation §5.2 exploits: two classes with identical
  // bags cannot be separated by BoW no matter the training budget.
  const Vocabulary v = Vocabulary::build({{"t", "=", "a", "[", "i", "]", ";", "b"}});
  const auto bag1 = bow_features({"t", "=", "a", "[", "i", "]", ";", "b", "[", "i",
                                  "]", "=", "t", ";"},
                                 v);
  const auto bag2 = bow_features({"b", "[", "i", "]", "=", "t", ";", "t", "=", "a",
                                  "[", "i", "]", ";"},
                                 v);
  EXPECT_EQ(bag1, bag2);
  std::vector<SparseVector> xs = {bag1, bag2};
  std::vector<std::int32_t> ys = {1, 0};
  LogisticRegression model(v.size());
  Rng rng(4);
  model.train(xs, ys, LogisticConfig{.epochs = 200}, rng);
  // Identical inputs -> identical outputs; at most one can be right.
  EXPECT_FLOAT_EQ(model.predict_proba(bag1), model.predict_proba(bag2));
}

TEST(Logistic, L2ShrinksWeights) {
  std::vector<SparseVector> xs = {{{0, 1.0f}}, {{0, 0.0f}}};
  std::vector<std::int32_t> ys = {1, 0};
  LogisticRegression weak(1);
  LogisticRegression strong(1);
  Rng r1(5), r2(5);
  weak.train(xs, ys, LogisticConfig{.epochs = 200, .l2 = 0.0f}, r1);
  strong.train(xs, ys, LogisticConfig{.epochs = 200, .l2 = 0.5f}, r2);
  EXPECT_LT(std::abs(strong.weights()[0]), std::abs(weak.weights()[0]));
}

TEST(Logistic, RejectsMismatchedInputs) {
  LogisticRegression model(4);
  std::vector<SparseVector> xs = {{{0, 1.0f}}};
  std::vector<std::int32_t> ys = {0, 1};
  Rng rng(6);
  EXPECT_THROW(model.train(xs, ys, LogisticConfig{}, rng), InvalidArgument);
  EXPECT_THROW(model.predict_proba({{7, 1.0f}}), InvalidArgument);
}

}  // namespace
}  // namespace clpp::baselines
