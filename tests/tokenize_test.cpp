// Tests for code representations (§4.2, Table 5) and the vocabulary.
#include <gtest/gtest.h>

#include <algorithm>

#include "support/error.h"
#include "tokenize/representation.h"
#include "tokenize/vocabulary.h"

namespace clpp::tokenize {
namespace {

TEST(Representation, NamesRoundTrip) {
  for (Representation rep : all_representations())
    EXPECT_EQ(representation_from(representation_name(rep)), rep);
  EXPECT_THROW(representation_from("bogus"), InvalidArgument);
}

TEST(Text, TokenizesPaperTable5Example) {
  const auto tokens = tokenize("for (i = 0; i < len; i++) a[i] = i;",
                               Representation::kText);
  const std::vector<std::string> expected = {"for", "(", "i", "=", "0", ";",
                                             "i",   "<", "len", ";", "i", "++",
                                             ")",   "a", "[", "i", "]", "=",
                                             "i",   ";"};
  EXPECT_EQ(tokens, expected);
}

TEST(RText, MatchesPaperTable5Replacement) {
  const auto tokens = tokenize("for (i = 0; i < len; i++) a[i] = i;",
                               Representation::kRText);
  // i -> var0, len -> var1, a -> arr0 (array classified via ArrayRef).
  const std::vector<std::string> expected = {
      "for", "(", "var0", "=", "0", ";", "var0", "<",    "var1", ";",
      "var0", "++", ")",  "arr0", "[", "var0", "]", "=", "var0", ";"};
  EXPECT_EQ(tokens, expected);
}

TEST(RText, KeepsBuiltinsAndKeywords) {
  const auto tokens = tokenize("printf(\"%d\", sqrt(x));", Representation::kRText);
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "printf"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "sqrt"), tokens.end());
  EXPECT_EQ(std::find(tokens.begin(), tokens.end(), "x"), tokens.end());
}

TEST(RText, FunctionNamesGetFnPrefix) {
  const auto map = replacement_map("y = Calc(x) + Calc(z);");
  EXPECT_EQ(map.at("Calc"), "fn0");
  EXPECT_EQ(map.at("y"), "var0");
}

TEST(Text, LiteralBucketing) {
  const auto tokens =
      tokenize("a[i] = 100 + 101 + 2.5 + 123456.789; s = \"hello\"; c = 'x';",
               Representation::kText);
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "100"), tokens.end());
  EXPECT_EQ(std::find(tokens.begin(), tokens.end(), "101"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "<num>"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "2.5"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "<str>"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "<chr>"), tokens.end());
}

TEST(Text, PragmaLinesNeverLeak) {
  const auto tokens = tokenize(
      "#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] = i;",
      Representation::kText);
  EXPECT_EQ(std::find(tokens.begin(), tokens.end(), "pragma"), tokens.end());
  EXPECT_EQ(std::find(tokens.begin(), tokens.end(), "omp"), tokens.end());
}

TEST(Ast, PragmaNodesNeverLeak) {
  const auto tokens = tokenize(
      "#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] = i;",
      Representation::kAst);
  for (const std::string& token : tokens) EXPECT_NE(token, "Pragma:");
}

TEST(Ast, ContainsStructureLabels) {
  const auto tokens =
      tokenize("for (i = 0; i < len; i++) a[i] = i;", Representation::kAst);
  auto has = [&](const char* t) {
    return std::find(tokens.begin(), tokens.end(), t) != tokens.end();
  };
  EXPECT_TRUE(has("For:"));
  EXPECT_TRUE(has("Assignment:"));
  EXPECT_TRUE(has("BinaryOp:"));
  EXPECT_TRUE(has("ArrayRef:"));
  EXPECT_TRUE(has("ID:"));
  EXPECT_TRUE(has("Constant:"));
}

TEST(Ast, LongerThanTextOnAverage) {
  // Table 6: AST averages more tokens than Text (37 vs 33 in the paper).
  const char* snippets[] = {
      "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
      "for (i = 0; i < n; i++) { t = a[i]; b[i] = t * t; }",
      "for (i = 1; i < n; i++) a[i] = a[i - 1] + 1;",
  };
  std::size_t text_total = 0, ast_total = 0;
  for (const char* code : snippets) {
    text_total += tokenize(code, Representation::kText).size();
    ast_total += tokenize(code, Representation::kAst).size();
  }
  EXPECT_GT(ast_total, text_total);
}

TEST(RAst, ReplacesIdentifiersInsideLabels) {
  const auto tokens =
      tokenize("for (i = 0; i < len; i++) a[i] = i;", Representation::kRAst);
  auto has = [&](const char* t) {
    return std::find(tokens.begin(), tokens.end(), t) != tokens.end();
  };
  EXPECT_TRUE(has("var0"));
  EXPECT_TRUE(has("arr0"));
  EXPECT_FALSE(has("len"));
  EXPECT_FALSE(has("a"));
}

TEST(Ast, ThrowsOnUnparseableInput) {
  EXPECT_THROW(tokenize("for (i = 0 i++;", Representation::kAst), ParseError);
  // Text representation only lexes, so the same input passes.
  EXPECT_NO_THROW(tokenize("for (i = 0 i++;", Representation::kText));
}

TEST(Vocabulary, SpecialsFirst) {
  const Vocabulary v = Vocabulary::build({{"x", "y", "x"}});
  EXPECT_EQ(v.token_of(Vocabulary::kPad), "<pad>");
  EXPECT_EQ(v.token_of(Vocabulary::kCls), "<cls>");
  EXPECT_EQ(v.token_of(Vocabulary::kUnk), "<unk>");
  EXPECT_EQ(v.token_of(Vocabulary::kMask), "<mask>");
  EXPECT_EQ(v.size(), 6u);
  // Frequency order: x (2) before y (1).
  EXPECT_EQ(v.token_of(4), "x");
  EXPECT_EQ(v.token_of(5), "y");
}

TEST(Vocabulary, UnknownMapsToUnk) {
  const Vocabulary v = Vocabulary::build({{"a"}});
  EXPECT_EQ(v.id_of("zzz"), Vocabulary::kUnk);
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("zzz"));
}

TEST(Vocabulary, MinCountFilters) {
  const Vocabulary v = Vocabulary::build({{"common", "common", "rare"}}, 2);
  EXPECT_TRUE(v.contains("common"));
  EXPECT_FALSE(v.contains("rare"));
}

TEST(Vocabulary, EncodePrependsClsAndTruncates) {
  const Vocabulary v = Vocabulary::build({{"a", "b", "c"}});
  const auto ids = v.encode({"a", "b", "c"}, 3);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], Vocabulary::kCls);
  EXPECT_EQ(v.token_of(ids[1]), "a");
  EXPECT_EQ(v.token_of(ids[2]), "b");  // c truncated
}

TEST(Vocabulary, OovTypeCounting) {
  const Vocabulary v = Vocabulary::build({{"a", "b"}});
  EXPECT_EQ(v.count_oov_types({{"a", "x", "y"}, {"y", "b"}}), 2u);
  EXPECT_EQ(v.count_oov_types({{"a", "b"}}), 0u);
}

TEST(Vocabulary, DeterministicTieBreak) {
  const Vocabulary a = Vocabulary::build({{"beta", "alpha"}});
  const Vocabulary b = Vocabulary::build({{"alpha", "beta"}});
  EXPECT_EQ(a.id_of("alpha"), b.id_of("alpha"));
  EXPECT_EQ(a.id_of("beta"), b.id_of("beta"));
}

TEST(ReplacementSignal, RTextVocabSmallerThanText) {
  // Table 6: replacement shrinks the vocabulary (6,427 -> 2,424 for Text).
  const char* snippets[] = {
      "for (i = 0; i < n; i++) alpha[i] = beta[i];",
      "for (j = 0; j < m; j++) gamma[j] = delta[j];",
      "for (k = 0; k < p; k++) epsilon[k] = zeta[k];",
  };
  std::vector<std::vector<std::string>> text_docs, rtext_docs;
  for (const char* code : snippets) {
    text_docs.push_back(tokenize(code, Representation::kText));
    rtext_docs.push_back(tokenize(code, Representation::kRText));
  }
  const Vocabulary text_vocab = Vocabulary::build(text_docs);
  const Vocabulary rtext_vocab = Vocabulary::build(rtext_docs);
  EXPECT_LT(rtext_vocab.size(), text_vocab.size());
}

}  // namespace
}  // namespace clpp::tokenize
