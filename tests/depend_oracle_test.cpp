// Brute-force oracle for the v2 dependence engine (analysis/ddtest.h).
//
// Property: the engine is allowed to be conservative but never unsound.
// For ≥1000 randomly generated affine loop nests with literal bounds and
// trip counts ≤ 8, every iteration pair is enumerated concretely and each
// observed collision must be admitted by the engine's answer:
//
//   * a collision exists            -> PairResult.possible
//   * a distinct-outer-iteration
//     collision exists              -> PairResult.carried()
//   * every collision's per-level
//     direction class               -> contained in DepLevel.dirs
//   * a pinned carried distance     -> matches every carried collision
//
// The reverse direction (claiming a dependence that does not exist) is
// deliberately unchecked: one-sided conservatism is the contract.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/accesses.h"
#include "analysis/ddtest.h"
#include "frontend/parser.h"
#include "support/rng.h"

namespace clpp::analysis {
namespace {

using frontend::NodeKind;
using frontend::NodePtr;

struct LoopSpec {
  std::string var;
  long long lower = 0;
  long long step = 1;
  long long trip = 1;  // iteration count; upper bound = lower + step * trip
};

/// One subscript dimension: offset + sum of coeff * induction value.
struct DimSpec {
  long long offset = 0;
  std::vector<long long> coeffs;  // parallel to the nest's loops
};

struct AccessSpec {
  std::vector<DimSpec> dims;
  bool is_write = false;
};

struct NestSpec {
  std::vector<LoopSpec> loops;   // outermost first
  std::vector<AccessSpec> refs;  // accesses to the single array "A"
};

std::string render_subscript(const NestSpec& nest, const DimSpec& dim) {
  std::ostringstream out;
  out << dim.offset;
  for (std::size_t l = 0; l < dim.coeffs.size(); ++l) {
    const long long c = dim.coeffs[l];
    if (c == 0) continue;
    out << (c > 0 ? " + " : " - ") << (c > 0 ? c : -c) << " * " << nest.loops[l].var;
  }
  return out.str();
}

std::string render_ref(const NestSpec& nest, const AccessSpec& ref) {
  std::string text = "A";
  for (const DimSpec& dim : ref.dims) text += "[" + render_subscript(nest, dim) + "]";
  return text;
}

std::string render(const NestSpec& nest) {
  std::ostringstream out;
  std::string indent;
  for (const LoopSpec& loop : nest.loops) {
    out << indent << "for (" << loop.var << " = " << loop.lower << "; " << loop.var
        << " < " << loop.lower + loop.step * loop.trip << "; ";
    if (loop.step == 1)
      out << loop.var << "++";
    else
      out << loop.var << " += " << loop.step;
    out << ")\n";
    indent += "  ";
  }
  // One statement carrying every reference: writes on the left (chained),
  // reads summed on the right. "A[..] = A[..] = .." is not valid C; emit a
  // compound body instead, one statement per write.
  std::vector<const AccessSpec*> writes, reads;
  for (const AccessSpec& ref : nest.refs)
    (ref.is_write ? writes : reads).push_back(&ref);
  out << indent << "{\n";
  for (std::size_t w = 0; w < writes.size(); ++w) {
    out << indent << "  " << render_ref(nest, *writes[w]) << " = ";
    if (w == 0 && !reads.empty()) {
      for (std::size_t r = 0; r < reads.size(); ++r) {
        if (r > 0) out << " + ";
        out << render_ref(nest, *reads[r]);
      }
      out << " + 1.0;\n";
    } else {
      out << w << ".0;\n";
    }
  }
  out << indent << "}\n";
  return out.str();
}

NestSpec random_nest(Rng& rng) {
  NestSpec nest;
  const int depth = rng.chance(0.5) ? 1 : 2;
  const char* names[] = {"i", "j"};
  for (int l = 0; l < depth; ++l) {
    LoopSpec loop;
    loop.var = names[l];
    loop.lower = rng.range(0, 2);
    loop.step = rng.chance(0.25) ? rng.range(2, 3) : 1;
    loop.trip = rng.range(1, 8);
    nest.loops.push_back(loop);
  }
  const int rank = rng.chance(0.3) ? 2 : 1;
  const int refs = rng.range(2, 3);
  bool have_write = false;
  for (int r = 0; r < refs; ++r) {
    AccessSpec ref;
    ref.is_write = !have_write || rng.chance(0.4);
    have_write = have_write || ref.is_write;
    for (int d = 0; d < rank; ++d) {
      DimSpec dim;
      dim.offset = rng.range(0, 6);
      for (int l = 0; l < depth; ++l) dim.coeffs.push_back(rng.range(-3, 3));
      ref.dims.push_back(dim);
    }
    nest.refs.push_back(ref);
  }
  return nest;
}

/// All iteration vectors of the nest, outermost index first.
std::vector<std::vector<long long>> iteration_space(const NestSpec& nest) {
  std::vector<std::vector<long long>> space{{}};
  for (const LoopSpec& loop : nest.loops) {
    std::vector<std::vector<long long>> next;
    for (const auto& prefix : space)
      for (long long t = 0; t < loop.trip; ++t) {
        auto iter = prefix;
        iter.push_back(loop.lower + loop.step * t);
        next.push_back(iter);
      }
    space = next;
  }
  return space;
}

/// Concrete subscript vector of one collected access at one iteration,
/// evaluated through the same affine lowering the engine uses — the
/// generated subscripts are literal affine, so the forms are exact.
std::vector<long long> element_of(const NestSpec& nest,
                                  const std::vector<AffineForm>& dims,
                                  const std::vector<long long>& iter) {
  std::vector<long long> element;
  for (const AffineForm& form : dims) {
    long long value = form.offset;
    for (std::size_t l = 0; l < nest.loops.size(); ++l) {
      const auto coeff = form.coeffs.find(nest.loops[l].var);
      if (coeff != form.coeffs.end()) value += coeff->second * iter[l];
    }
    element.push_back(value);
  }
  return element;
}

unsigned direction_bit(long long src_iter, long long snk_iter) {
  if (src_iter < snk_iter) return kDirLt;
  if (src_iter == snk_iter) return kDirEq;
  return kDirGt;
}

TEST(DependOracle, NeverClaimsFalseIndependence) {
  Rng rng(20230227);  // the paper's conference date; any fixed seed works
  int nests_checked = 0, pairs_checked = 0, collisions_seen = 0;
  while (nests_checked < 1200) {
    const NestSpec nest = random_nest(rng);
    const std::string code = render(nest);
    const NodePtr unit = frontend::parse_snippet(code);
    const frontend::Node* loop = nullptr;
    frontend::walk(*unit, [&](const frontend::Node& node, int) {
      if (loop == nullptr && node.kind == NodeKind::kFor) loop = &node;
    });
    ASSERT_NE(loop, nullptr) << code;
    ++nests_checked;

    const NestContext context(*loop);
    const AccessSet accesses = collect_accesses(loop->child(3));
    std::vector<const Access*> refs;
    for (const Access& access : accesses.accesses)
      if (access.is_array && access.variable == "A") refs.push_back(&access);
    ASSERT_EQ(refs.size(), nest.refs.size()) << code;

    // Lower every collected subscript to its (exact, literal) affine form;
    // the oracle evaluates these directly, so no spec matching is needed.
    SubscriptEnv env;
    for (const LoopSpec& loop : nest.loops) env.vars.insert(loop.var);
    std::vector<std::vector<AffineForm>> dims_of(refs.size());
    for (std::size_t a = 0; a < refs.size(); ++a) {
      for (const frontend::Node* subscript : refs[a]->subscripts) {
        const AffineForm form = analyze_affine(*subscript, env);
        ASSERT_TRUE(form.affine) << code;
        ASSERT_TRUE(form.symbols.empty()) << code;
        dims_of[a].push_back(form);
      }
    }

    const auto space = iteration_space(nest);
    for (std::size_t src = 0; src < refs.size(); ++src) {
      for (std::size_t snk = 0; snk < refs.size(); ++snk) {
        if (!refs[src]->is_write && !refs[snk]->is_write) continue;
        const PairResult result = context.test_pair(*refs[src], *refs[snk]);
        ++pairs_checked;

        bool collided = false, carried = false;
        std::optional<long long> seen_distance;
        bool distance_consistent = true;
        for (const auto& src_iter : space) {
          for (const auto& snk_iter : space) {
            if (element_of(nest, dims_of[src], src_iter) !=
                element_of(nest, dims_of[snk], snk_iter))
              continue;
            collided = true;
            if (src_iter[0] != snk_iter[0]) {
              carried = true;
              // Distance in iteration counts of the analyzed (outer) loop.
              const long long distance =
                  (snk_iter[0] - src_iter[0]) / nest.loops[0].step;
              if (seen_distance.has_value() && *seen_distance != distance &&
                  *seen_distance != -distance)
                distance_consistent = false;
              if (!seen_distance.has_value()) seen_distance = distance;
            }
            // Every concrete collision must be admitted by the direction
            // vector, level by level (levels are analyzed-loop-first).
            for (std::size_t level = 0;
                 level < result.levels.size() && level < src_iter.size(); ++level) {
              const unsigned bit = direction_bit(src_iter[level], snk_iter[level]);
              EXPECT_TRUE(result.levels[level].dirs & bit)
                  << code << "collision at level " << level << " direction "
                  << direction_text(bit) << " not admitted by "
                  << direction_text(result.levels[level].dirs);
            }
          }
        }

        if (collided) {
          ++collisions_seen;
          EXPECT_TRUE(result.possible) << code << "src=" << src << " snk=" << snk
                                       << ": collision exists but engine said no";
        }
        if (carried) {
          EXPECT_TRUE(result.carried())
              << code << "src=" << src << " snk=" << snk
              << ": distinct-iteration collision exists but carried() is false";
          if (result.carried_distance().has_value() && distance_consistent &&
              seen_distance.has_value()) {
            EXPECT_EQ(std::abs(*result.carried_distance()), std::abs(*seen_distance))
                << code << "pinned distance disagrees with brute force";
          }
        }
      }
    }
  }
  // The generator must actually exercise the engine, not vacuous no-dep nests.
  EXPECT_GE(nests_checked, 1200);
  EXPECT_GT(collisions_seen, pairs_checked / 10);
}

}  // namespace
}  // namespace clpp::analysis
