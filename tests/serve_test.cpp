// Tests for clpp::serve (dynamic micro-batching inference server) and the
// batched ParallelAdvisor entry point it drives.
//
// The advisors here are deliberately *untrained* (random weights from a
// fixed seed): batching correctness, scheduling, backpressure, and drain
// semantics are independent of model quality, and skipping training keeps
// the suite fast enough for the TSan CI job that runs it on every push.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/advisor.h"
#include "obs/flight.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "resil/fault.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "support/json.h"
#include "tokenize/representation.h"
#include "tokenize/vocabulary.h"

namespace clpp::serve {
namespace {

using core::Advice;
using core::AdviseOptions;
using core::ParallelAdvisor;

/// Snippets of varied token lengths so advise_batch exercises several
/// length buckets per call.
const std::vector<std::string>& snippets() {
  static const std::vector<std::string> list = {
      "for (i = 0; i < n; i++) a[i] = b[i];",
      "for (i = 0; i < n; i++) c[i] = a[i] + b[i];",
      "for (i = 0; i < n; i++) sum += a[i];",
      "for (i = 1; i < n; i++) a[i] = a[i - 1] + 1;",
      "for (i = 0; i < n; i++) { t = a[i] * 0.5; b[i] = t + a[i]; }",
      "for (i = 0; i < n; i++) printf(\"%d\", a[i]);",
      "for (i = 0; i < n; i++) { if (a[i] > 0.5) a[i] = evolve(a[i]); }",
      "for (i = 0; i < n; i++) { for (j = 0; j < m; j++) c[i] += a[i] * b[j]; }",
      "for (i = 0; i < n; i++) best = a[i] > best ? a[i] : best;",
      "for (i = 2; i < n; i++) a[i] = a[i - 2] * 2.0;",
      "for (i = 0; i < n; i++) { x = f(i); y = g(x); d[i] = x + y; }",
      "for (i = 0; i < n; i++) a[i] = 0;",
  };
  return list;
}

/// Builds a small untrained advisor whose vocabulary covers the snippets.
std::unique_ptr<ParallelAdvisor> tiny_advisor() {
  constexpr std::size_t kMaxLen = 48;
  std::vector<std::vector<std::string>> documents;
  for (const std::string& code : snippets())
    documents.push_back(tokenize::tokenize(code, tokenize::Representation::kText));
  tokenize::Vocabulary vocab = tokenize::Vocabulary::build(documents);

  core::PragFormerConfig config;
  config.encoder.vocab_size = vocab.size();
  config.encoder.max_seq = kMaxLen;
  config.encoder.dim = 16;
  config.encoder.heads = 2;
  config.encoder.layers = 1;
  config.encoder.ffn_dim = 32;
  Rng rng(4242);
  auto directive = std::make_unique<core::PragFormer>(config, rng);
  auto private_model = std::make_unique<core::PragFormer>(config, rng);
  auto reduction = std::make_unique<core::PragFormer>(config, rng);
  auto schedule = std::make_unique<core::PragFormer>(config, rng);
  auto advisor = std::make_unique<ParallelAdvisor>(
      std::move(directive), std::move(private_model), std::move(reduction),
      std::move(vocab), tokenize::Representation::kText, kMaxLen);
  advisor->set_schedule_model(std::move(schedule));
  return advisor;
}

void expect_same_advice(const Advice& a, const Advice& b, const std::string& code) {
  // Bitwise float equality is the contract: batched rows must reproduce
  // the batch-of-one forward exactly, not approximately.
  EXPECT_EQ(a.p_directive, b.p_directive) << code;
  EXPECT_EQ(a.p_private, b.p_private) << code;
  EXPECT_EQ(a.p_reduction, b.p_reduction) << code;
  EXPECT_EQ(a.p_dynamic, b.p_dynamic) << code;
  EXPECT_EQ(a.needs_directive, b.needs_directive) << code;
  EXPECT_EQ(a.needs_private, b.needs_private) << code;
  EXPECT_EQ(a.needs_reduction, b.needs_reduction) << code;
  EXPECT_EQ(a.wants_dynamic_schedule, b.wants_dynamic_schedule) << code;
  EXPECT_EQ(a.suggestion, b.suggestion) << code;
  EXPECT_EQ(a.compar_suggestion, b.compar_suggestion) << code;
}

TEST(AdviseBatch, BitwiseIdenticalToSequentialAdvise) {
  const auto advisor = tiny_advisor();
  // Three copies of the snippet set → buckets larger than one row each.
  std::vector<std::string> codes;
  for (int round = 0; round < 3; ++round)
    for (const std::string& code : snippets()) codes.push_back(code);

  const std::vector<Advice> batched = advisor->advise_batch(codes);
  ASSERT_EQ(batched.size(), codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    const Advice sequential = advisor->advise(codes[i]);
    expect_same_advice(batched[i], sequential, codes[i]);
  }
}

TEST(AdviseBatch, EmptyAndSingle) {
  const auto advisor = tiny_advisor();
  EXPECT_TRUE(advisor->advise_batch({}).empty());
  const std::vector<Advice> one = advisor->advise_batch({snippets()[0]});
  ASSERT_EQ(one.size(), 1u);
  expect_same_advice(one[0], advisor->advise(snippets()[0]), snippets()[0]);
}

TEST(AdviseBatch, CoalescesDuplicatesToTheSameVerdict) {
  const auto advisor = tiny_advisor();
  // Interleaved duplicates: every copy must carry the (bitwise) same verdict
  // as its own sequential advise, i.e. coalescing is unobservable except in
  // the work saved.
  const std::vector<std::string> codes = {snippets()[0], snippets()[1],
                                          snippets()[0], snippets()[2],
                                          snippets()[1], snippets()[0]};
  const std::vector<Advice> batched = advisor->advise_batch(codes);
  ASSERT_EQ(batched.size(), codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i)
    expect_same_advice(batched[i], advisor->advise(codes[i]), codes[i]);
}

TEST(AdviseBatch, OptionsSkipDeterministicExtras) {
  const auto advisor = tiny_advisor();
  AdviseOptions model_only;
  model_only.with_analysis = false;
  model_only.with_compar = false;
  const std::vector<Advice> advices =
      advisor->advise_batch(snippets(), model_only);
  const std::vector<Advice> full = advisor->advise_batch(snippets());
  for (std::size_t i = 0; i < advices.size(); ++i) {
    // Model verdicts are untouched by the options...
    EXPECT_EQ(advices[i].p_directive, full[i].p_directive);
    // ...but the ComPar comparison is skipped entirely.
    EXPECT_TRUE(advices[i].compar_suggestion.empty());
    if (advices[i].needs_directive) {
      EXPECT_NE(advices[i].suggestion.find("#pragma omp parallel for"),
                std::string::npos);
    }
  }
}

TEST(AdvisorClone, CloneBehavesIdentically) {
  const auto advisor = tiny_advisor();
  const auto copy = advisor->clone();
  for (const std::string& code : snippets())
    expect_same_advice(copy->advise(code), advisor->advise(code), code);
}

TEST(ServeConfigTest, MaxBatchSharesTheInferBatchConstant) {
  EXPECT_EQ(ServeConfig{}.max_batch, core::kDefaultInferBatch);
  EXPECT_THROW(
      [] {
        ServeConfig config;
        config.max_batch = 0;
        config.validate();
      }(),
      InvalidArgument);
  EXPECT_THROW(
      [] {
        ServeConfig config;
        config.queue_capacity = 0;
        config.validate();
      }(),
      InvalidArgument);
}

TEST(ServerTest, ConcurrentSubmissionsMatchSequentialVerdicts) {
  const auto advisor = tiny_advisor();
  ServeConfig config;
  config.max_batch = 8;
  config.max_delay_us = 500;
  config.workers = 2;
  InferenceServer server(*advisor, config);

  constexpr int kClients = 6;
  constexpr int kPerClient = 8;
  std::vector<std::vector<std::future<ServedAdvice>>> futures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r)
        futures[c].push_back(
            server.submit(snippets()[(c * kPerClient + r) % snippets().size()]));
    });
  }
  for (std::thread& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kPerClient; ++r) {
      const std::string& code = snippets()[(c * kPerClient + r) % snippets().size()];
      const ServedAdvice served = futures[c][r].get();
      expect_same_advice(served.advice, advisor->advise(code), code);
      EXPECT_NE(served.timing.trace_id, 0u);
    }
  }
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.batch_rows, kClients * kPerClient);
}

TEST(ServerTest, MaxDelayFlushesPartialBatch) {
  const auto advisor = tiny_advisor();
  ServeConfig config;
  config.max_batch = 64;  // never reachable with one request
  config.max_delay_us = 1000;
  InferenceServer server(*advisor, config);

  std::future<ServedAdvice> future = server.submit(snippets()[0]);
  // The batch can never fill, so completion proves the delay-based flush.
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  expect_same_advice(future.get().advice, advisor->advise(snippets()[0]), snippets()[0]);
  EXPECT_EQ(server.stats().completed, 1u);
}

TEST(ServerTest, DuplicateRequestsCoalesceWithinABatch) {
  const auto advisor = tiny_advisor();
  ServeConfig config;
  config.max_batch = 8;
  // Wide window: the batch flushes the moment all eight requests land, so
  // they deterministically share one inference pass.
  config.max_delay_us = 200'000;
  InferenceServer server(*advisor, config);

  const std::string code = snippets()[0];
  const Advice sequential = advisor->advise(code);
  std::vector<std::future<ServedAdvice>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(server.submit(code));
  for (auto& future : futures)
    expect_same_advice(future.get().advice, sequential, code);

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batch_rows, 8u);
  EXPECT_EQ(stats.coalesced, 7u);  // one forward served all eight copies
}

TEST(ServerTest, ResultCacheServesRepeatsWithoutReinference) {
  const auto advisor = tiny_advisor();
  ServeConfig config;
  config.max_batch = 4;
  config.max_delay_us = 500;
  config.cache.max_entries = 64;
  InferenceServer server(*advisor, config);

  const std::string code = snippets()[0];
  const Advice sequential = advisor->advise(code);
  const ServedAdvice first = server.submit(code).get();
  expect_same_advice(first.advice, sequential, code);
  EXPECT_FALSE(first.timing.cached);

  // The repeat is served from the result cache: identical advice, flagged
  // cached, fresh trace id, and no second batch row.
  const ServedAdvice repeat = server.submit(code).get();
  expect_same_advice(repeat.advice, sequential, code);
  EXPECT_TRUE(repeat.timing.cached);
  EXPECT_NE(repeat.timing.trace_id, 0u);

  // Whitespace-only edits hit the same canonical digest.
  const ServedAdvice reformatted =
      server.submit("  " + code + "\n").get();
  expect_same_advice(reformatted.advice, sequential, code);
  EXPECT_TRUE(reformatted.timing.cached);

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.batch_rows, 1u);
}

TEST(ServerTest, RejectPolicyShedsLoadWhenQueueIsFull) {
  const auto advisor = tiny_advisor();
  ServeConfig config;
  config.queue_capacity = 3;
  config.overflow = OverflowPolicy::kReject;
  config.workers = 0;  // nothing consumes: the queue fills deterministically
  InferenceServer server(*advisor, config);

  std::vector<std::future<ServedAdvice>> accepted;
  for (int i = 0; i < 3; ++i) accepted.push_back(server.submit(snippets()[0]));
  EXPECT_EQ(server.queue_depth(), 3u);
  EXPECT_THROW(server.submit(snippets()[0]), ServeOverload);
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.rejected, 1u);

  // Shutdown with no workers cannot drain: every accepted future must still
  // complete — with ServeShutdown, never by abandonment.
  server.shutdown();
  for (auto& future : accepted) EXPECT_THROW(future.get(), ServeShutdown);
  EXPECT_THROW(server.submit(snippets()[0]), ServeShutdown);
}

TEST(ServerTest, BlockPolicyWaitsForSpace) {
  const auto advisor = tiny_advisor();
  ServeConfig config;
  config.queue_capacity = 2;
  config.overflow = OverflowPolicy::kBlock;
  config.max_batch = 1;
  config.max_delay_us = 0;  // serve immediately, one request per batch
  InferenceServer server(*advisor, config);

  // Many more submissions than capacity: with kBlock none may be rejected,
  // and all must eventually be served.
  constexpr int kTotal = 24;
  std::vector<std::future<ServedAdvice>> futures;
  futures.reserve(kTotal);
  for (int i = 0; i < kTotal; ++i)
    futures.push_back(server.submit(snippets()[i % snippets().size()]));
  for (auto& future : futures) EXPECT_NO_THROW(future.get());
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(stats.completed, kTotal);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ServerTest, ShutdownDrainsAllInFlightRequests) {
  const auto advisor = tiny_advisor();
  ServeConfig config;
  config.max_batch = 4;
  config.max_delay_us = 200'000;  // long window: shutdown must cut it short
  InferenceServer server(*advisor, config);

  std::vector<std::future<ServedAdvice>> futures;
  for (int i = 0; i < 10; ++i)
    futures.push_back(server.submit(snippets()[i % snippets().size()]));
  server.shutdown();  // graceful drain: every queued request still served
  for (auto& future : futures) EXPECT_NO_THROW(future.get());
  EXPECT_EQ(server.stats().completed, 10u);
  EXPECT_EQ(server.queue_depth(), 0u);
}

TEST(ServerTest, InjectedWorkerFaultFailsOnlyItsOwnBatch) {
  const auto advisor = tiny_advisor();
  ServeConfig config;
  config.max_batch = 4;
  // A wide window so each group of 4 submissions lands in exactly one batch
  // (the batch flushes the moment max_batch is reached, not at the window).
  config.max_delay_us = 200'000;
  InferenceServer server(*advisor, config);

  // First arrival at the serve.batch seam throws inside the worker.
  resil::FaultPlan plan;
  plan.triggers["serve.batch"] = {1};
  resil::set_fault_plan(plan);

  std::vector<std::future<ServedAdvice>> doomed;
  for (int i = 0; i < 4; ++i) doomed.push_back(server.submit(snippets()[i]));
  // The injected fault must surface through exactly these futures...
  for (auto& future : doomed) EXPECT_THROW(future.get(), resil::InjectedFault);

  // ...while the worker survives and serves subsequent requests normally.
  std::vector<std::future<ServedAdvice>> healthy;
  for (int i = 0; i < 4; ++i) healthy.push_back(server.submit(snippets()[i]));
  for (auto& future : healthy) EXPECT_NO_THROW(future.get());
  resil::clear_fault_plan();

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.failed, 4u);
  EXPECT_EQ(stats.completed, 4u);
}

TEST(ServerTest, EnqueueFaultSeamRejectsTheSubmission) {
  const auto advisor = tiny_advisor();
  InferenceServer server(*advisor, ServeConfig{});
  resil::FaultPlan plan;
  plan.triggers["serve.enqueue"] = {1};
  resil::set_fault_plan(plan);
  EXPECT_THROW(server.submit(snippets()[0]), resil::InjectedFault);
  resil::clear_fault_plan();
  // The failed submission never entered the queue; the server still works.
  EXPECT_NO_THROW(server.submit(snippets()[0]).get());
}

TEST(ServerTest, ResponsesCarryTraceAndTiming) {
  const auto advisor = tiny_advisor();
  ServeConfig config;
  config.max_batch = 4;
  config.max_delay_us = 200'000;  // all four submissions share one batch
  InferenceServer server(*advisor, config);

  // Second submission duplicates the first: exactly one coalesced row.
  const std::vector<std::string> codes = {snippets()[0], snippets()[0],
                                          snippets()[1], snippets()[2]};
  std::vector<std::future<ServedAdvice>> futures;
  for (const std::string& code : codes) futures.push_back(server.submit(code));

  std::set<std::uint64_t> trace_ids;
  std::vector<ServedAdvice> served;
  for (auto& future : futures) served.push_back(future.get());
  ASSERT_EQ(server.stats().batches, 1u) << "submissions split across batches";

  for (const ServedAdvice& response : served) {
    EXPECT_NE(response.timing.trace_id, 0u);
    trace_ids.insert(response.timing.trace_id);
    // The batch pass contains the model forwards, so batch time bounds
    // infer time; a batch that did any work has a nonzero forward share.
    EXPECT_GE(response.timing.batch_us, response.timing.infer_us);
    EXPECT_GT(response.timing.infer_us, 0u);
    // All four rode the same batch, so they report the same batch split.
    EXPECT_EQ(response.timing.batch_us, served[0].timing.batch_us);
  }
  // Trace ids are per-request, not per-batch: duplicates get their own id.
  EXPECT_EQ(trace_ids.size(), codes.size());
  EXPECT_FALSE(served[0].timing.coalesced);
  EXPECT_TRUE(served[1].timing.coalesced);  // duplicate of request 0
  EXPECT_FALSE(served[2].timing.coalesced);
  EXPECT_FALSE(served[3].timing.coalesced);
}

TEST(ServerTest, ChromeTraceLinksRequestAcrossThreads) {
  const auto advisor = tiny_advisor();
  obs::Tracer::instance().reset();
  obs::set_enabled(true);

  std::uint64_t trace_id = 0;
  {
    ServeConfig config;
    config.max_batch = 2;
    config.max_delay_us = 1000;
    InferenceServer server(*advisor, config);
    trace_id = server.submit(snippets()[0]).get().timing.trace_id;
    server.shutdown();
  }
  obs::set_enabled(false);
  ASSERT_NE(trace_id, 0u);

  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(trace_id));
  const Json doc = obs::Tracer::instance().chrome_trace();
  obs::Tracer::instance().reset();

  // Collect the flow events ("s" start / "t" step / "f" finish) carrying
  // this request's id and the spans that anchor them.
  std::map<std::string, std::set<std::int64_t>> flow_tids;  // ph -> tids
  const Json& events = doc.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    const std::string ph = e.get_string("ph", "");
    if ((ph == "s" || ph == "t" || ph == "f") &&
        e.get_string("id", "") == hex)
      flow_tids[ph].insert(e.at("tid").as_int());
  }
  // The flow starts at submit (client thread) and finishes at the infer
  // span (worker thread) — one connected lane across two threads.
  ASSERT_EQ(flow_tids.count("s"), 1u) << "missing flow start";
  ASSERT_EQ(flow_tids.count("f"), 1u) << "missing flow finish";
  EXPECT_NE(*flow_tids["s"].begin(), *flow_tids["f"].begin())
      << "flow start and finish landed on the same thread";
}

TEST(ServerTest, FlightRecorderDumpsOnInjectedServeFault) {
  const auto advisor = tiny_advisor();
  const std::string dump_path =
      testing::TempDir() + "clpp_serve_flight_test.json";
  std::remove(dump_path.c_str());
  obs::set_flight_out(dump_path);  // also arms dump-on-injected-fault

  ServeConfig config;
  config.max_batch = 2;
  config.max_delay_us = 1000;
  InferenceServer server(*advisor, config);
  resil::FaultPlan plan;
  plan.triggers["serve.batch"] = {1};
  resil::set_fault_plan(plan);
  EXPECT_THROW(server.submit(snippets()[0]).get(), resil::InjectedFault);
  resil::clear_fault_plan();
  obs::set_flight_out("");  // disarm for the rest of the suite

  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "no flight dump at " << dump_path;
  std::ostringstream text;
  text << in.rdbuf();
  const Json dump = Json::parse(text.str());
  EXPECT_EQ(dump.at("schema").as_string(), "clpp.flight.v1");
  EXPECT_NE(dump.at("reason").as_string().find("serve.batch"),
            std::string::npos);
  bool saw_fault = false;
  bool saw_submit = false;
  const Json& dumped = dump.at("events");
  for (std::size_t i = 0; i < dumped.size(); ++i) {
    const std::string kind = dumped.at(i).at("kind").as_string();
    if (kind == "resil.fault") saw_fault = true;
    if (kind == "serve.submit") saw_submit = true;
  }
  EXPECT_TRUE(saw_fault) << "dump lacks the injected-fault event";
  EXPECT_TRUE(saw_submit) << "dump lacks the submit that led to the fault";
  std::remove(dump_path.c_str());
}

TEST(ServerTest, StatsJsonReportsLiveTelemetry) {
  const auto advisor = tiny_advisor();
  ServeConfig config;
  config.max_batch = 4;
  config.max_delay_us = 200'000;
  InferenceServer server(*advisor, config);

  std::vector<std::future<ServedAdvice>> futures;
  futures.push_back(server.submit(snippets()[0]));
  futures.push_back(server.submit(snippets()[0]));  // coalesces
  futures.push_back(server.submit(snippets()[1]));
  futures.push_back(server.submit(snippets()[2]));
  for (auto& future : futures) future.get();

  // stats_json is always-on telemetry: it must be populated even though
  // this test never enabled CLPP_OBS.
  const Json stats = server.stats_json();
  EXPECT_EQ(stats.at("schema").as_string(), "clpp.serve_stats.v1");
  EXPECT_EQ(stats.at("completed").as_int(), 4);
  EXPECT_EQ(stats.at("queue_depth").as_int(), 0);
  EXPECT_EQ(stats.at("coalesced").as_int(), 1);
  EXPECT_DOUBLE_EQ(stats.at("coalesce_rate").as_double(), 0.25);
  EXPECT_EQ(stats.at("latency_us").at("count").as_int(), 4);
  EXPECT_EQ(stats.at("queue_wait_us").at("count").as_int(), 4);
  EXPECT_GT(stats.at("latency_us").at("p99").as_double(), 0.0);
  // Latency includes the queue wait, so the percentiles must order.
  EXPECT_GE(stats.at("latency_us").at("p50").as_double(),
            stats.at("queue_wait_us").at("p50").as_double());
  // One batch ran: the per-batch histograms saw exactly one sample, and
  // every task model (directive + clause heads + schedule) was timed.
  EXPECT_EQ(stats.at("batch_size").at("count").as_int(), 1);
  EXPECT_EQ(stats.at("infer_us").at("count").as_int(), 1);
  const Json& tasks = stats.at("tasks");
  EXPECT_EQ(tasks.at("directive_us").at("count").as_int(), 1);
  EXPECT_GT(tasks.at("directive_us").at("mean").as_double(), 0.0);
}

TEST(ServerTest, QualityJsonRoundTripsLiveInsight) {
  const auto advisor = tiny_advisor();
  // Arm drift detection the way a trained checkpoint would: fingerprint
  // the "training" distribution and hand it to the advisor.
  insight::FingerprintBuilder builder;
  for (const std::string& code : snippets()) builder.observe(code);
  advisor->set_fingerprint(builder.build());

  ServeConfig config;
  config.max_batch = 4;
  InferenceServer server(*advisor, config);
  // Serve exactly the fingerprinted distribution: the drift window then
  // matches the reference and must score stable.
  std::vector<std::future<ServedAdvice>> futures;
  for (const std::string& code : snippets())
    futures.push_back(server.submit(code));
  for (auto& future : futures) future.get();
  const std::int64_t served = static_cast<std::int64_t>(snippets().size());

  // The snapshot must survive a serialize/parse cycle (it is the payload
  // of the {"cmd":"quality"} admin verb).
  const Json doc = Json::parse(server.quality_json().dump());
  EXPECT_EQ(doc.at("schema").as_string(), "clpp.insight.v1");
  EXPECT_EQ(doc.at("samples").as_int(), served);
  EXPECT_EQ(doc.at("tasks").at("directive").at("count").as_int(), served);

  const Json& drift = doc.at("drift");
  EXPECT_TRUE(drift.at("armed").as_bool());
  EXPECT_EQ(drift.at("observed").as_int(), served);
  EXPECT_LT(drift.at("score").as_double(), 0.1);

  // Several snippets (elementwise copy, the a[i-1] recurrence) carry a
  // conclusive proof, and the books must balance regardless of what the
  // untrained model predicted.
  const Json& disagreement = doc.at("disagreement");
  const std::int64_t checked = disagreement.at("checked").as_int();
  EXPECT_GE(checked, 2);
  EXPECT_LE(checked, served);
  EXPECT_EQ(disagreement.at("agreements").as_int() +
                disagreement.at("count").as_int(),
            checked);
  EXPECT_GE(disagreement.at("rate").as_double(), 0.0);
  EXPECT_LE(disagreement.at("rate").as_double(), 1.0);
}

TEST(RequestQueueTest, PopBatchHonorsMaxBatch) {
  RequestQueue queue(16, OverflowPolicy::kBlock);
  for (int i = 0; i < 10; ++i) {
    PendingRequest request;
    request.code = "x";
    ASSERT_TRUE(queue.push(std::move(request)));
  }
  EXPECT_EQ(queue.depth(), 10u);
  EXPECT_EQ(queue.pop_batch(4, 0).size(), 4u);
  EXPECT_EQ(queue.pop_batch(4, 0).size(), 4u);
  EXPECT_EQ(queue.pop_batch(4, 0).size(), 2u);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(RequestQueueTest, CloseWakesBlockedPusherAndDrainsPoppers) {
  RequestQueue queue(1, OverflowPolicy::kBlock);
  {
    PendingRequest request;
    request.code = "first";
    ASSERT_TRUE(queue.push(std::move(request)));
  }
  std::atomic<bool> pusher_threw{false};
  std::thread pusher([&] {
    PendingRequest request;
    request.code = "blocked";
    try {
      queue.push(std::move(request));  // full queue: blocks until close
    } catch (const ServeShutdown&) {
      pusher_threw = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  pusher.join();
  EXPECT_TRUE(pusher_threw.load());

  // Poppers still drain the item that was queued before the close...
  EXPECT_EQ(queue.pop_batch(8, 0).size(), 1u);
  // ...and then get the closed-and-drained exit signal.
  EXPECT_TRUE(queue.pop_batch(8, 0).empty());
}

TEST(RequestQueueTest, PopBatchPrunesExpiredWithoutBurningSlots) {
  RequestQueue queue(16, OverflowPolicy::kBlock);
  std::vector<std::future<ServedAdvice>> expired_futures;
  // Three requests whose deadline passed long ago, interleaved with two
  // live ones — the batch must contain exactly the live pair.
  for (int i = 0; i < 3; ++i) {
    PendingRequest request;
    request.code = "expired";
    request.deadline_ns = 1;  // epoch of the steady clock: long past
    expired_futures.push_back(request.result.get_future());
    ASSERT_TRUE(queue.push(std::move(request)));
    if (i < 2) {
      PendingRequest live;
      live.code = "live";
      ASSERT_TRUE(queue.push(std::move(live)));
    }
  }
  const std::vector<PendingRequest> batch = queue.pop_batch(8, 0);
  ASSERT_EQ(batch.size(), 2u);
  for (const PendingRequest& request : batch)
    EXPECT_EQ(request.code, "live");
  EXPECT_EQ(queue.deadline_dropped(), 3u);
  for (auto& future : expired_futures)
    EXPECT_THROW(future.get(), ServeDeadline);
}

TEST(RequestQueueTest, PopBatchKeepsWaitingWhenEveryItemExpired) {
  // A batch of only-expired requests must not return an empty vector (the
  // workers' exit signal): the popper drops them and goes back to waiting
  // until a live request (or close) arrives.
  RequestQueue queue(16, OverflowPolicy::kBlock);
  for (int i = 0; i < 4; ++i) {
    PendingRequest request;
    request.code = "expired";
    request.deadline_ns = 1;
    ASSERT_TRUE(queue.push(std::move(request)));
  }
  std::thread late_pusher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    PendingRequest live;
    live.code = "live";
    queue.push(std::move(live));
  });
  const std::vector<PendingRequest> batch = queue.pop_batch(8, 0);
  late_pusher.join();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].code, "live");
  EXPECT_EQ(queue.deadline_dropped(), 4u);
}

TEST(ServerTest, ExpiredDeadlineFailsWithServeDeadlineAndCounts) {
  const auto advisor = tiny_advisor();
  ServeConfig config;
  config.workers = 1;
  InferenceServer server(*advisor, config);
  // An already-expired deadline is deterministic: whenever the worker
  // dequeues it, the drop path fires.
  auto doomed = server.submit(snippets()[0], /*deadline_ns=*/1);
  EXPECT_THROW(doomed.get(), ServeDeadline);
  // A deadline-free request on the same server still serves normally.
  auto served = server.submit(snippets()[1]);
  EXPECT_NO_THROW(served.get());
  server.shutdown();
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.deadline_dropped, 1u);
  EXPECT_EQ(stats.completed, 1u);
  // Deadline drops are their own series, not inference failures.
  EXPECT_EQ(stats.failed, 0u);
  const Json json = server.stats_json();
  EXPECT_EQ(json.at("deadline_dropped").as_int(), 1);
}

TEST(ServerTest, FarFutureDeadlineNeverDrops) {
  const auto advisor = tiny_advisor();
  ServeConfig config;
  config.workers = 1;
  InferenceServer server(*advisor, config);
  const std::uint64_t hour_from_now =
      obs::Tracer::now_ns() + 3'600'000'000'000ULL;
  std::vector<std::future<ServedAdvice>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(server.submit(snippets()[i], hour_from_now));
  for (auto& future : futures) EXPECT_NO_THROW(future.get());
  server.shutdown();
  EXPECT_EQ(server.stats().deadline_dropped, 0u);
}

}  // namespace
}  // namespace clpp::serve
