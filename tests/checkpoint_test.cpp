// Hostile-input hardening for nn checkpoints and tensor I/O: restore error
// paths, implausible headers, truncation, oversized strings, allocation
// failures, and fuzzing with random and bit-flipped files. The invariant
// under fuzz: loading never crashes, never UBs, never throws anything but
// a clpp::Error subclass — and a bounded one (no attacker-sized allocs).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "nn/checkpoint.h"
#include "nn/layer.h"
#include "resil/container.h"
#include "resil/fault.h"
#include "support/rng.h"
#include "tensor/io.h"

namespace clpp {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path("checkpoint_test_tmp") / info->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    resil::clear_fault_plan();
    fs::remove_all(dir_);
  }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << p;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  static void spew(const std::string& p, const std::string& bytes) {
    std::ofstream out(p, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(static_cast<bool>(out)) << p;
  }

  fs::path dir_;
};

Tensor filled(std::vector<std::size_t> shape, float start) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t.data()[i] = start + static_cast<float>(i);
  return t;
}

// ------------------------------------------------------ save/load basics

TEST_F(CheckpointTest, SaveLoadRoundTripsThroughContainer) {
  nn::Parameter w("w", filled({2, 3}, 1.0f));
  nn::Parameter b("b", filled({3}, -2.0f));
  const std::vector<nn::Parameter*> params = {&w, &b};
  const std::string target = path("model.ckpt");
  nn::save_checkpoint(target, params);
  EXPECT_TRUE(resil::is_container_file(target));

  const auto loaded = nn::load_checkpoint(target);
  ASSERT_EQ(loaded.size(), 2u);
  ASSERT_EQ(loaded.count("w"), 1u);
  EXPECT_EQ(loaded.at("w").shape(), w.value.shape());
  EXPECT_EQ(std::memcmp(loaded.at("w").data(), w.value.data(),
                        w.value.numel() * sizeof(float)),
            0);
}

TEST_F(CheckpointTest, LegacyUncontaineredCheckpointStillLoads) {
  // The pre-resil format: the raw entry stream, no magic, no checksum.
  std::ofstream out(path("legacy.ckpt"), std::ios::binary);
  const Tensor t = filled({2, 2}, 5.0f);
  write_u64(out, 1);
  write_string(out, "w");
  write_tensor(out, t);
  out.close();

  const auto loaded = nn::load_checkpoint(path("legacy.ckpt"));
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(std::memcmp(loaded.at("w").data(), t.data(), t.numel() * sizeof(float)),
            0);
}

TEST_F(CheckpointTest, MissingFileIsIoError) {
  EXPECT_THROW(nn::load_checkpoint(path("absent.ckpt")), IoError);
}

TEST_F(CheckpointTest, EmptyFileIsCleanError) {
  spew(path("empty.ckpt"), "");
  EXPECT_THROW(nn::load_checkpoint(path("empty.ckpt")), Error);
}

// -------------------------------------------------- restore_parameters

TEST_F(CheckpointTest, StrictRestoreThrowsOnMissingParameter) {
  nn::Parameter w("w", filled({2}, 0.0f));
  nn::Parameter extra("extra", filled({2}, 0.0f));
  std::map<std::string, Tensor> checkpoint;
  checkpoint.emplace("w", filled({2}, 9.0f));
  EXPECT_THROW(
      nn::restore_parameters(checkpoint, {&w, &extra}, /*strict=*/true),
      ParseError);
}

TEST_F(CheckpointTest, StrictRestoreThrowsOnShapeMismatch) {
  nn::Parameter w("w", filled({2, 3}, 0.0f));
  std::map<std::string, Tensor> checkpoint;
  checkpoint.emplace("w", filled({3, 2}, 9.0f));
  EXPECT_THROW(nn::restore_parameters(checkpoint, {&w}, /*strict=*/true),
               ParseError);
}

TEST_F(CheckpointTest, NonStrictRestoreCountsPartialTransfer) {
  nn::Parameter matched("encoder.w", filled({2}, 0.0f));
  nn::Parameter wrong_shape("encoder.b", filled({4}, 0.0f));
  nn::Parameter absent("head.w", filled({2}, 0.0f));
  std::map<std::string, Tensor> checkpoint;
  checkpoint.emplace("encoder.w", filled({2}, 7.0f));
  checkpoint.emplace("encoder.b", filled({5}, 7.0f));  // shape mismatch
  const std::size_t restored = nn::restore_parameters(
      checkpoint, {&matched, &wrong_shape, &absent}, /*strict=*/false);
  EXPECT_EQ(restored, 1u);
  EXPECT_EQ(matched.value.data()[0], 7.0f);   // transferred
  EXPECT_EQ(wrong_shape.value.data()[0], 0.0f);  // kept init
  EXPECT_EQ(absent.value.data()[0], 0.0f);       // kept init
}

// ------------------------------------------------- hostile input headers

std::string containerized(const std::string& payload, const std::string& target) {
  resil::write_container(target, payload);
  return target;
}

TEST_F(CheckpointTest, ImplausibleEntryCountRejectedBeforeAllocating) {
  std::ostringstream payload;
  write_u64(payload, 1'000'000'000'000ULL);
  EXPECT_THROW(
      nn::load_checkpoint(containerized(payload.str(), path("count.ckpt"))),
      ParseError);
}

TEST_F(CheckpointTest, HugeTensorDimensionRejected) {
  std::istringstream in = [] {
    std::ostringstream raw;
    raw.write("CLPT", 4);
    write_u32(raw, 1);  // version
    write_u32(raw, 1);  // rank
    write_u64(raw, 1ULL << 40);
    return std::istringstream(raw.str());
  }();
  EXPECT_THROW(read_tensor(in), ParseError);
}

TEST_F(CheckpointTest, OverflowingDimensionProductRejected) {
  // Each dim is individually under the cap, but the product overflows it —
  // a classic multiplication-overflow allocation attack.
  std::istringstream in = [] {
    std::ostringstream raw;
    raw.write("CLPT", 4);
    write_u32(raw, 1);  // version
    write_u32(raw, 3);  // rank
    write_u64(raw, 1ULL << 25);
    write_u64(raw, 1ULL << 25);
    write_u64(raw, 1ULL << 25);
    return std::istringstream(raw.str());
  }();
  EXPECT_THROW(read_tensor(in), ParseError);
}

TEST_F(CheckpointTest, ExcessiveRankRejected) {
  std::istringstream in = [] {
    std::ostringstream raw;
    raw.write("CLPT", 4);
    write_u32(raw, 1);
    write_u32(raw, 200);  // rank
    return std::istringstream(raw.str());
  }();
  EXPECT_THROW(read_tensor(in), ParseError);
}

TEST_F(CheckpointTest, TruncatedTensorPayloadIsCleanError) {
  std::ostringstream raw;
  write_tensor(raw, filled({4, 4}, 1.0f));
  const std::string full = raw.str();
  for (const std::size_t keep : {full.size() / 4, full.size() / 2, full.size() - 1}) {
    std::istringstream in(full.substr(0, keep));
    EXPECT_THROW(read_tensor(in), Error) << "kept " << keep;
  }
}

TEST_F(CheckpointTest, OversizedStringLengthRejectedBeforeAllocating) {
  std::ostringstream raw;
  write_u64(raw, kMaxStringBytes + 1);
  std::istringstream in(raw.str());
  EXPECT_THROW(read_string(in), ParseError);
}

TEST_F(CheckpointTest, AllocationFailureSurfacesAsIoError) {
  nn::Parameter w("w", filled({8, 8}, 1.0f));
  const std::string target = path("alloc.ckpt");
  nn::save_checkpoint(target, {&w});
  resil::set_fault_plan(resil::FaultPlan::parse("tensor.alloc:1"));
  // Injected bad_alloc inside the guarded tensor allocation must come out
  // as a clpp error, never escape as std::bad_alloc.
  EXPECT_THROW(nn::load_checkpoint(target), IoError);
  resil::clear_fault_plan();
  EXPECT_NO_THROW(nn::load_checkpoint(target));
}

TEST_F(CheckpointTest, TensorWriteFaultAbortsSaveWithoutCreatingFile) {
  nn::Parameter w("w", filled({2}, 1.0f));
  const std::string target = path("failed_save.ckpt");
  resil::set_fault_plan(resil::FaultPlan::parse("tensor.write:1"));
  EXPECT_THROW(nn::save_checkpoint(target, {&w}), IoError);
  resil::clear_fault_plan();
  EXPECT_FALSE(fs::exists(target));
}

// ----------------------------------------------------------------- fuzz

TEST_F(CheckpointTest, FuzzRandomFilesNeverEscapeTheErrorHierarchy) {
  Rng rng(0xF022);
  const std::string target = path("fuzz.ckpt");
  for (int iter = 0; iter < 150; ++iter) {
    std::string bytes(rng.index(600), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.index(256));
    // Bias some iterations toward the parsers' own magics so the fuzz
    // reaches past the first header check.
    if (iter % 5 == 1 && bytes.size() >= 4) std::memcpy(bytes.data(), "CLPC", 4);
    if (iter % 5 == 3 && bytes.size() >= 12) {
      std::uint64_t count = 1;
      std::memcpy(bytes.data(), &count, sizeof count);
    }
    spew(target, bytes);
    try {
      const auto loaded = nn::load_checkpoint(target);
      EXPECT_LE(loaded.size(), 1'000'000u);  // survived: caps still held
    } catch (const Error&) {
      // Expected: IoError or ParseError, both clpp::Error.
    } catch (...) {
      FAIL() << "non-clpp exception escaped on fuzz iteration " << iter;
    }
  }
}

TEST_F(CheckpointTest, FuzzBitFlippedCheckpointsAlwaysRejected) {
  nn::Parameter w("encoder.w", filled({6, 5}, 0.25f));
  nn::Parameter b("encoder.b", filled({5}, -1.0f));
  const std::string target = path("flip.ckpt");
  nn::save_checkpoint(target, {&w, &b});
  const std::string good = slurp(target);

  Rng rng(0xB17F11B);
  for (int iter = 0; iter < 300; ++iter) {
    std::string bad = good;
    const std::size_t byte = rng.index(bad.size());
    bad[byte] = static_cast<char>(bad[byte] ^ (1u << rng.index(8)));
    spew(target, bad);
    // CRC32 catches every single-bit error, so a flipped container must be
    // rejected deterministically — garbage tensors never load.
    EXPECT_THROW(nn::load_checkpoint(target), ParseError) << "byte " << byte;
  }
}

TEST_F(CheckpointTest, FuzzTruncatedCheckpointsAlwaysRejected) {
  nn::Parameter w("w", filled({3, 7}, 2.0f));
  const std::string target = path("trunc.ckpt");
  nn::save_checkpoint(target, {&w});
  const std::string good = slurp(target);

  Rng rng(0x7254);
  for (int iter = 0; iter < 60; ++iter) {
    spew(target, good.substr(0, rng.index(good.size())));
    EXPECT_THROW(nn::load_checkpoint(target), Error);
  }
}

}  // namespace
}  // namespace clpp
