// End-to-end learning tests: the NN substrate must actually learn.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "nn/checkpoint.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/mlm.h"
#include "nn/optimizer.h"
#include "nn/transformer.h"
#include "tensor/ops.h"

namespace clpp::nn {
namespace {

/// Synthetic sequence-classification task: label 1 iff token 7 appears
/// before token 8 somewhere in the sequence. Requires order sensitivity,
/// which a transformer has and a bag of embeddings does not.
struct ToyTask {
  std::vector<std::vector<std::int32_t>> sequences;
  std::vector<std::int32_t> labels;

  static ToyTask make(std::size_t n, std::size_t max_len, Rng& rng) {
    ToyTask task;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t len = static_cast<std::size_t>(rng.range(4, max_len));
      std::vector<std::int32_t> seq(len);
      seq[0] = 1;  // CLS
      for (std::size_t j = 1; j < len; ++j)
        seq[j] = static_cast<std::int32_t>(rng.range(4, 15));
      // Force exactly one 7 and one 8 at random distinct positions.
      std::size_t a = 1 + rng.index(len - 1);
      std::size_t b = 1 + rng.index(len - 1);
      while (b == a) b = 1 + rng.index(len - 1);
      seq[a] = 7;
      seq[b] = 8;
      task.sequences.push_back(std::move(seq));
      task.labels.push_back(a < b ? 1 : 0);
    }
    return task;
  }
};

TokenBatch batch_of(const ToyTask& task, std::span<const std::size_t> idx,
                    std::size_t max_seq) {
  TokenBatch batch;
  batch.batch = idx.size();
  std::size_t longest = 1;
  for (std::size_t i : idx) longest = std::max(longest, task.sequences[i].size());
  batch.seq = std::min(longest, max_seq);
  batch.ids.assign(batch.batch * batch.seq, 0);
  batch.lengths.resize(batch.batch);
  for (std::size_t r = 0; r < idx.size(); ++r) {
    const auto& s = task.sequences[idx[r]];
    const std::size_t len = std::min(s.size(), batch.seq);
    batch.lengths[r] = static_cast<int>(len);
    std::copy_n(s.begin(), len, batch.ids.begin() + r * batch.seq);
  }
  return batch;
}

TEST(Training, TransformerLearnsOrderSensitiveTask) {
  Rng rng(2023);
  const ToyTask task = ToyTask::make(256, 12, rng);

  EncoderConfig cfg;
  cfg.vocab_size = 16;
  cfg.max_seq = 16;
  cfg.dim = 32;
  cfg.heads = 4;
  cfg.layers = 2;
  cfg.ffn_dim = 64;
  cfg.dropout = 0.0f;
  TransformerEncoder encoder(cfg, rng);
  Linear head("head", cfg.dim, 2, rng);

  std::vector<Parameter*> params;
  encoder.collect_parameters(params);
  head.collect_parameters(params);
  AdamW opt(AdamWConfig{.lr = 1e-3f});

  std::vector<std::size_t> order(task.sequences.size());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t batch_size = 32;

  float last_acc = 0.0f;
  for (int epoch = 0; epoch < 30; ++epoch) {
    rng.shuffle(order);
    std::size_t correct = 0;
    for (std::size_t start = 0; start < order.size(); start += batch_size) {
      const std::size_t count = std::min(batch_size, order.size() - start);
      const std::span<const std::size_t> idx{order.data() + start, count};
      TokenBatch batch = batch_of(task, idx, cfg.max_seq);
      std::vector<std::int32_t> labels(count);
      for (std::size_t r = 0; r < count; ++r) labels[r] = task.labels[idx[r]];

      zero_gradients(params);
      Tensor hidden = encoder.forward(batch, true);
      Tensor pooled = pooled_cls(hidden, batch.batch, batch.seq);
      Tensor logits = head.forward(pooled, true);
      SoftmaxCrossEntropy loss;
      loss.forward(logits, labels);
      for (std::size_t r = 0; r < count; ++r)
        correct += argmax(loss.probabilities().row_span(r)) ==
                   static_cast<std::size_t>(labels[r]);

      Tensor g = loss.backward();
      g = head.backward(g);
      g = scatter_cls_grad(g, batch.batch, batch.seq);
      encoder.backward(g);
      clip_gradient_norm(params, 1.0);
      opt.step(params);
    }
    last_acc = static_cast<float>(correct) / static_cast<float>(order.size());
    if (last_acc > 0.95f) break;
  }
  EXPECT_GT(last_acc, 0.9f) << "transformer failed to learn an order-sensitive task";
}

TEST(Training, MlmLossDecreasesAndAccuracyRises) {
  Rng rng(7);
  // Highly regular "language": token t is always followed by t+1 (mod band).
  std::vector<std::vector<std::int32_t>> sequences;
  for (int i = 0; i < 64; ++i) {
    std::vector<std::int32_t> seq;
    std::int32_t t = static_cast<std::int32_t>(4 + rng.index(8));
    for (int j = 0; j < 12; ++j) {
      seq.push_back(t);
      t = 4 + (t - 4 + 1) % 8;
    }
    sequences.push_back(std::move(seq));
  }

  EncoderConfig cfg;
  cfg.vocab_size = 16;
  cfg.max_seq = 16;
  cfg.dim = 32;
  cfg.heads = 4;
  cfg.layers = 2;
  cfg.ffn_dim = 64;
  cfg.dropout = 0.0f;
  TransformerEncoder encoder(cfg, rng);

  MlmVocabInfo vocab{.mask_id = 3, .special_below = 4, .vocab_size = 16};
  MlmConfig mlm;
  mlm.epochs = 12;
  mlm.batch_size = 16;
  mlm.lr = 1e-3f;
  const auto stats = pretrain_mlm(encoder, sequences, vocab, mlm, rng);
  ASSERT_EQ(stats.size(), 12u);
  EXPECT_LT(stats.back().loss, stats.front().loss * 0.7f);
  EXPECT_GT(stats.back().masked_accuracy, 0.5f);
}

TEST(Training, PretrainedEncoderTransfersIntoClassifier) {
  Rng rng(11);
  EncoderConfig cfg;
  cfg.vocab_size = 16;
  cfg.max_seq = 8;
  cfg.dim = 16;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn_dim = 24;
  cfg.dropout = 0.0f;

  TransformerEncoder pretrained(cfg, rng);
  std::vector<std::vector<std::int32_t>> seqs(8, std::vector<std::int32_t>{5, 6, 7, 8});
  MlmVocabInfo vocab{.mask_id = 3, .special_below = 4, .vocab_size = 16};
  MlmConfig mlm;
  mlm.epochs = 1;
  pretrain_mlm(pretrained, seqs, vocab, mlm, rng);

  std::vector<Parameter*> src;
  pretrained.collect_parameters(src);
  std::map<std::string, Tensor> snapshot;
  for (Parameter* p : src) snapshot.emplace(p->name, p->value);

  TransformerEncoder fresh(cfg, rng);
  std::vector<Parameter*> dst;
  fresh.collect_parameters(dst);
  const std::size_t restored = restore_parameters(snapshot, dst, /*strict=*/true);
  EXPECT_EQ(restored, dst.size());
  for (std::size_t i = 0; i < dst.size(); ++i)
    EXPECT_TRUE(dst[i]->value.allclose(src[i]->value, 0.0f)) << dst[i]->name;
}

}  // namespace
}  // namespace clpp::nn
