// clpp::resil tests: fault-plan parsing and firing, retry/backoff, atomic
// file replacement, checksummed containers, and the trainer's crash-safe
// checkpoint/resume — including the two acceptance scenarios from the
// issue: a torn write that must leave the previous checkpoint intact, and
// a killed-and-resumed training run that must reproduce the uninterrupted
// run's final weights and curves bit-for-bit.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/pipeline.h"
#include "core/pragformer.h"
#include "core/resume.h"
#include "core/trainer.h"
#include "corpus/corpus.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "resil/resil.h"
#include "support/rng.h"

namespace clpp {
namespace {

namespace fs = std::filesystem;

class ResilTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path("resil_test_tmp") / info->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    resil::clear_fault_plan();
    obs::set_enabled(false);
    fs::remove_all(dir_);
  }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << p;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  static void spew(const std::string& p, const std::string& bytes) {
    std::ofstream out(p, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(static_cast<bool>(out)) << p;
  }

  fs::path dir_;
};

// ---------------------------------------------------------------- faults

TEST_F(ResilTest, FaultPlanParsesSpecs) {
  const resil::FaultPlan plan =
      resil::FaultPlan::parse(" atomic.rename:1, atomic.rename:3 ,train.batch:8 ");
  ASSERT_EQ(plan.triggers.size(), 2u);
  EXPECT_EQ(plan.triggers.at("atomic.rename"), (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(plan.triggers.at("train.batch"), (std::vector<std::uint64_t>{8}));
  EXPECT_TRUE(resil::FaultPlan::parse("").empty());
  EXPECT_TRUE(resil::FaultPlan::parse(" , ,").empty());
}

TEST_F(ResilTest, FaultPlanRejectsMalformedSpecs) {
  EXPECT_THROW(resil::FaultPlan::parse("open"), InvalidArgument);
  EXPECT_THROW(resil::FaultPlan::parse("open:"), InvalidArgument);
  EXPECT_THROW(resil::FaultPlan::parse(":3"), InvalidArgument);
  EXPECT_THROW(resil::FaultPlan::parse("open:zero"), InvalidArgument);
  EXPECT_THROW(resil::FaultPlan::parse("open:0"), InvalidArgument);
}

TEST_F(ResilTest, FaultPointFiresOnExactArrivals) {
  resil::set_fault_plan(resil::FaultPlan::parse("seam.x:2,seam.x:4"));
  EXPECT_TRUE(resil::fault_injection_active());
  EXPECT_NO_THROW(resil::fault_point("seam.x"));
  EXPECT_THROW(resil::fault_point("seam.x"), resil::InjectedFault);
  EXPECT_NO_THROW(resil::fault_point("seam.x"));
  EXPECT_THROW(resil::fault_point("seam.x"), resil::InjectedFault);
  EXPECT_NO_THROW(resil::fault_point("seam.x"));
  EXPECT_EQ(resil::fault_hits("seam.x"), 5u);
  EXPECT_NO_THROW(resil::fault_point("seam.other"));
  resil::clear_fault_plan();
  EXPECT_FALSE(resil::fault_injection_active());
  EXPECT_NO_THROW(resil::fault_point("seam.x"));
}

TEST_F(ResilTest, AllocFaultPointThrowsBadAlloc) {
  resil::set_fault_plan(resil::FaultPlan::parse("seam.alloc:1"));
  EXPECT_THROW(resil::alloc_fault_point("seam.alloc"), std::bad_alloc);
  EXPECT_NO_THROW(resil::alloc_fault_point("seam.alloc"));
}

TEST_F(ResilTest, EnvironmentInstallsFaultPlan) {
  ASSERT_EQ(setenv("CLPP_FAULTS", "seam.env:1", 1), 0);
  resil::init_faults_from_env();
  ASSERT_EQ(unsetenv("CLPP_FAULTS"), 0);
  EXPECT_THROW(resil::fault_point("seam.env"), resil::InjectedFault);
  EXPECT_NO_THROW(resil::fault_point("seam.env"));
}

// ----------------------------------------------------------------- retry

resil::RetryPolicy fast_retry() {
  resil::RetryPolicy policy;
  policy.base_delay_ms = 0.01;
  policy.max_delay_ms = 0.05;
  return policy;
}

TEST_F(ResilTest, RetryRecoversFromTransientFailures) {
  obs::set_enabled(true);
  const std::uint64_t retries_before = obs::metrics().counter("clpp.resil.retries").value();
  int calls = 0;
  const int result = resil::with_retry(
      "test.flaky",
      [&] {
        if (++calls < 3) throw IoError("transient");
        return 42;
      },
      fast_retry());
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(obs::metrics().counter("clpp.resil.retries").value() - retries_before, 2u);
}

TEST_F(ResilTest, RetryExhaustsAttemptsThenRethrows) {
  int calls = 0;
  EXPECT_THROW(resil::with_retry(
                   "test.dead",
                   [&]() -> int {
                     ++calls;
                     throw IoError("permanent");
                   },
                   fast_retry()),
               IoError);
  EXPECT_EQ(calls, 3);
}

TEST_F(ResilTest, RetryElapsedBudgetCapsTotalBackoff) {
  obs::set_enabled(true);
  const std::uint64_t exhausted_before =
      obs::metrics().counter("clpp.resil.retry_exhausted").value();
  // Ten attempts are allowed but the elapsed budget only funds a couple of
  // 10ms-ish backoffs: the retry loop must give up on the budget, not the
  // attempt count.
  resil::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_delay_ms = 10.0;
  policy.multiplier = 1.0;
  policy.max_delay_ms = 10.0;
  policy.max_elapsed_ms = 25.0;
  int calls = 0;
  EXPECT_THROW(resil::with_retry(
                   "test.budget",
                   [&]() -> int {
                     ++calls;
                     throw IoError("permanent");
                   },
                   policy),
               IoError);
  // Jitter scales each delay into [5, 15) ms, so a 25ms budget funds at
  // least one and at most four sleeps; the attempt cap (10) is never hit.
  EXPECT_GE(calls, 2);
  EXPECT_LE(calls, 5);
  EXPECT_EQ(
      obs::metrics().counter("clpp.resil.retry_exhausted").value() -
          exhausted_before,
      1u);
}

TEST_F(ResilTest, RetryBudgetGiveUpPointIsDeterministic) {
  // The budget is accounted from the *scheduled* jittered delays, not
  // wall-clock reads, so two runs with one seed agree exactly on when to
  // give up.
  resil::RetryPolicy policy;
  policy.max_attempts = 32;
  policy.base_delay_ms = 0.01;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 0.05;
  policy.max_elapsed_ms = 0.12;
  policy.jitter_seed = 0xfeedULL;
  auto run = [&policy] {
    int calls = 0;
    try {
      resil::with_retry(
          "test.replay",
          [&]() -> int {
            ++calls;
            throw IoError("permanent");
          },
          policy);
    } catch (const IoError&) {
    }
    return calls;
  };
  const int first = run();
  EXPECT_EQ(run(), first);
  EXPECT_LT(first, policy.max_attempts);
}

TEST_F(ResilTest, RetryExhaustedCountsMaxAttemptsToo) {
  obs::set_enabled(true);
  const std::uint64_t exhausted_before =
      obs::metrics().counter("clpp.resil.retry_exhausted").value();
  int calls = 0;
  EXPECT_THROW(resil::with_retry(
                   "test.dead2",
                   [&]() -> int {
                     ++calls;
                     throw IoError("permanent");
                   },
                   fast_retry()),
               IoError);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(
      obs::metrics().counter("clpp.resil.retry_exhausted").value() -
          exhausted_before,
      1u);
}

TEST_F(ResilTest, RetryNeverRetriesParseErrors) {
  // Corruption is deterministic: retrying a checksum mismatch cannot heal it.
  int calls = 0;
  EXPECT_THROW(resil::with_retry(
                   "test.corrupt",
                   [&]() -> int {
                     ++calls;
                     throw ParseError("checksum mismatch");
                   },
                   fast_retry()),
               ParseError);
  EXPECT_EQ(calls, 1);
}

TEST_F(ResilTest, BackoffDelaysGrowAndStayJitterBounded) {
  resil::RetryPolicy policy;  // base 1ms, x4, cap 50ms
  std::uint64_t jitter = policy.jitter_seed;
  const double d1 = resil::detail::backoff_delay_ms(policy, 1, jitter);
  const double d2 = resil::detail::backoff_delay_ms(policy, 2, jitter);
  const double d9 = resil::detail::backoff_delay_ms(policy, 9, jitter);
  EXPECT_GE(d1, 0.5);
  EXPECT_LT(d1, 1.5);
  EXPECT_GE(d2, 2.0);
  EXPECT_LT(d2, 6.0);
  EXPECT_LE(d9, 75.0);  // capped at 50ms before jitter
}

// ----------------------------------------------------- atomic file writes

TEST_F(ResilTest, AtomicWriteCreatesReplacesAndCleansTmp) {
  const std::string target = path("data.txt");
  resil::atomic_write_file(target, std::string_view{"v1"});
  EXPECT_EQ(slurp(target), "v1");
  resil::atomic_write_file(target, [](std::ostream& out) { out << "v2-longer"; });
  EXPECT_EQ(slurp(target), "v2-longer");
  EXPECT_FALSE(fs::exists(target + ".tmp"));
  EXPECT_TRUE(resil::file_exists(target));
  EXPECT_FALSE(resil::file_exists(path("absent")));
}

TEST_F(ResilTest, FaultAtEverySeamLeavesPreviousFileIntact) {
  const std::string target = path("data.txt");
  resil::atomic_write_file(target, std::string_view{"old"});
  for (const char* seam :
       {"atomic.open", "atomic.write", "atomic.fsync", "atomic.rename"}) {
    resil::FaultPlan plan;
    plan.triggers[seam] = {1};
    resil::set_fault_plan(std::move(plan));
    EXPECT_THROW(resil::atomic_write_file(target, std::string_view{"new"}), IoError)
        << seam;
    resil::clear_fault_plan();
    EXPECT_EQ(slurp(target), "old") << seam;
    EXPECT_FALSE(fs::exists(target + ".tmp")) << seam;
  }
}

// ------------------------------------------------------------- container

TEST_F(ResilTest, Crc32MatchesKnownVector) {
  // The standard CRC-32 check value (e.g. zlib's crc32("123456789")).
  EXPECT_EQ(resil::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(resil::crc32(""), 0u);
}

TEST_F(ResilTest, ContainerRoundTripsAndSniffs) {
  const std::string target = path("payload.ckpt");
  const std::string payload = std::string("binary") + '\0' + "payload\x7f";
  resil::write_container(target, payload);
  EXPECT_TRUE(resil::is_container_file(target));
  EXPECT_EQ(resil::read_container(target), payload);

  spew(path("legacy.bin"), "not a container");
  EXPECT_FALSE(resil::is_container_file(path("legacy.bin")));
  EXPECT_FALSE(resil::is_container_file(path("absent.bin")));
}

TEST_F(ResilTest, EveryFlippedByteIsRejected) {
  const std::string target = path("flip.ckpt");
  resil::write_container(target, "checksum-protected payload");
  const std::string good = slurp(target);
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    spew(target, bad);
    EXPECT_THROW(resil::read_container(target), ParseError) << "byte " << i;
  }
}

TEST_F(ResilTest, TruncationIsRejected) {
  const std::string target = path("trunc.ckpt");
  resil::write_container(target, "a payload long enough to truncate");
  const std::string good = slurp(target);
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{19},
                                 good.size() - 1}) {
    spew(target, good.substr(0, keep));
    EXPECT_THROW(resil::read_container(target), ParseError) << "kept " << keep;
  }
  // Trailing garbage is corruption too, not silently ignored.
  spew(target, good + "x");
  EXPECT_THROW(resil::read_container(target), ParseError);
}

TEST_F(ResilTest, TornContainerWriteLeavesPreviousCheckpointIntact) {
  const std::string target = path("ckpt.bin");
  resil::write_container(target, "generation-1");
  // Exhaust all three write attempts at the rename seam: the "torn write"
  // acceptance scenario — the fault strikes between temp write and rename.
  resil::set_fault_plan(
      resil::FaultPlan::parse("atomic.rename:1,atomic.rename:2,atomic.rename:3"));
  EXPECT_THROW(resil::write_container(target, "generation-2"), IoError);
  resil::clear_fault_plan();
  EXPECT_EQ(resil::read_container(target), "generation-1");
  EXPECT_FALSE(fs::exists(target + ".tmp"));
  // A transient fault (one failure, retries left) succeeds transparently.
  resil::set_fault_plan(resil::FaultPlan::parse("atomic.rename:1"));
  resil::write_container(target, "generation-3");
  resil::clear_fault_plan();
  EXPECT_EQ(resil::read_container(target), "generation-3");
}

TEST_F(ResilTest, ContainerRecordsLatencyAndCounters) {
  obs::set_enabled(true);
  auto& reg = obs::metrics();
  const std::uint64_t saves = reg.counter("clpp.resil.ckpt_saves").value();
  const std::uint64_t loads = reg.counter("clpp.resil.ckpt_loads").value();
  const std::uint64_t save_lat = reg.histogram("clpp.resil.ckpt_save_us").count();
  const std::uint64_t load_lat = reg.histogram("clpp.resil.ckpt_load_us").count();
  const std::string target = path("metrics.ckpt");
  resil::write_container(target, "observable");
  (void)resil::read_container(target);
  EXPECT_EQ(reg.counter("clpp.resil.ckpt_saves").value() - saves, 1u);
  EXPECT_EQ(reg.counter("clpp.resil.ckpt_loads").value() - loads, 1u);
  EXPECT_EQ(reg.histogram("clpp.resil.ckpt_save_us").count() - save_lat, 1u);
  EXPECT_EQ(reg.histogram("clpp.resil.ckpt_load_us").count() - load_lat, 1u);
}

// ------------------------------------------------------------ env config

TEST_F(ResilTest, CheckpointEnvHelpers) {
  ASSERT_EQ(setenv("CLPP_CKPT_DIR", "/tmp/ckpts", 1), 0);
  ASSERT_EQ(setenv("CLPP_CKPT_EVERY", "25", 1), 0);
  EXPECT_EQ(resil::checkpoint_dir_from_env(), "/tmp/ckpts");
  EXPECT_EQ(resil::checkpoint_every_from_env(), 25u);
  ASSERT_EQ(setenv("CLPP_CKPT_EVERY", "not-a-number", 1), 0);
  EXPECT_EQ(resil::checkpoint_every_from_env(), 0u);
  ASSERT_EQ(unsetenv("CLPP_CKPT_DIR"), 0);
  ASSERT_EQ(unsetenv("CLPP_CKPT_EVERY"), 0);
  EXPECT_EQ(resil::checkpoint_dir_from_env(), "");
  EXPECT_EQ(resil::checkpoint_every_from_env(), 0u);
}

// --------------------------------------------------------- corpus seams

TEST_F(ResilTest, CorpusSaveIsAtomicAndLoadHasSeams) {
  corpus::Corpus corpus;
  corpus::Record r;
  r.id = "r0";
  r.family = "test";
  r.code = "for (i = 0; i < n; i++) a[i] = b[i];";
  r.has_directive = true;
  r.directive_text = "#pragma omp parallel for";
  r.refresh_labels();
  corpus.add(std::move(r));

  const std::string target = path("corpus.jsonl");
  corpus.save_jsonl(target);
  EXPECT_EQ(corpus::Corpus::load_jsonl(target).size(), 1u);

  resil::set_fault_plan(resil::FaultPlan::parse("corpus.open:1"));
  EXPECT_THROW(corpus::Corpus::load_jsonl(target), IoError);
  resil::set_fault_plan(resil::FaultPlan::parse("corpus.parse:1"));
  EXPECT_THROW(corpus::Corpus::load_jsonl(target), IoError);

  // A torn save (fault before rename, no retry at this layer) must leave
  // the previous corpus readable.
  const std::string before = slurp(target);
  resil::set_fault_plan(resil::FaultPlan::parse("atomic.rename:1"));
  EXPECT_THROW(corpus.save_jsonl(target), IoError);
  resil::clear_fault_plan();
  EXPECT_EQ(slurp(target), before);
}

// ------------------------------------------------- trainer checkpointing

core::PragFormerConfig tiny_model_config() {
  core::PragFormerConfig config;
  config.encoder.vocab_size = 16;
  config.encoder.max_seq = 16;
  config.encoder.dim = 16;
  config.encoder.heads = 2;
  config.encoder.layers = 1;
  config.encoder.ffn_dim = 24;
  // Non-zero dropout so the resumed RNG stream is load-bearing: a wrong
  // restore would desynchronize the dropout masks and change the weights.
  config.encoder.dropout = 0.1f;
  config.head_dropout = 0.1f;
  return config;
}

core::EncodedDataset tiny_dataset(int rows = 32) {
  // Positive sequences contain token 5, negatives token 6.
  core::EncodedDataset data;
  Rng data_rng(4);
  for (int i = 0; i < rows; ++i) {
    const bool pos = i % 2 == 0;
    std::vector<std::int32_t> seq = {1};
    for (int t = 0; t < 6; ++t)
      seq.push_back(static_cast<std::int32_t>(7 + data_rng.index(8)));
    seq[1 + data_rng.index(6)] = pos ? 5 : 6;
    data.sequences.push_back(std::move(seq));
    data.labels.push_back(pos);
  }
  return data;
}

void expect_bitwise_equal_params(core::PragFormer& a, core::PragFormer& b) {
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->name, pb[i]->name);
    ASSERT_EQ(pa[i]->value.shape(), pb[i]->value.shape());
    EXPECT_EQ(std::memcmp(pa[i]->value.data(), pb[i]->value.data(),
                          pa[i]->value.numel() * sizeof(float)),
              0)
        << pa[i]->name;
  }
}

void expect_equal_curves(const std::vector<core::EpochCurve>& a,
                         const std::vector<core::EpochCurve>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].epoch, b[i].epoch);
    // Exact equality: resume must be bitwise, not approximately, identical.
    // wall_seconds is explicitly outside the guarantee.
    EXPECT_EQ(a[i].train_loss, b[i].train_loss) << "epoch " << i;
    EXPECT_EQ(a[i].val_loss, b[i].val_loss) << "epoch " << i;
    EXPECT_EQ(a[i].val_accuracy, b[i].val_accuracy) << "epoch " << i;
  }
}

TEST_F(ResilTest, TrainerCheckpointRoundTrips) {
  core::TrainerCheckpoint ck;
  ck.epoch = 3;
  ck.next_start = 16;
  ck.step = 44;
  ck.batches = 2;
  ck.loss_sum = 1.25;
  ck.rng_state = {1, 2, 3, 4};
  ck.order = {3, 1, 2, 0};
  ck.curves.push_back({.epoch = 0, .train_loss = 0.5f, .val_loss = 0.4f,
                       .val_accuracy = 0.9f, .wall_seconds = 1.0});
  ck.best_val_loss = 0.4f;
  Tensor w({2, 3});
  for (std::size_t i = 0; i < w.numel(); ++i) w.data()[i] = static_cast<float>(i);
  ck.best_snapshot.emplace("w", w);
  ck.params.emplace("w", w);
  ck.opt_steps = 44;
  ck.opt_m.push_back(w);
  ck.opt_v.push_back(w);

  const std::string target = core::trainer_checkpoint_path(dir_.string());
  core::save_trainer_checkpoint(target, ck);
  const core::TrainerCheckpoint back = core::load_trainer_checkpoint(target);
  EXPECT_EQ(back.epoch, 3u);
  EXPECT_EQ(back.next_start, 16u);
  EXPECT_EQ(back.step, 44u);
  EXPECT_EQ(back.batches, 2u);
  EXPECT_EQ(back.loss_sum, 1.25);
  EXPECT_EQ(back.rng_state, (std::array<std::uint64_t, 4>{1, 2, 3, 4}));
  EXPECT_EQ(back.order, (std::vector<std::uint64_t>{3, 1, 2, 0}));
  ASSERT_EQ(back.curves.size(), 1u);
  EXPECT_EQ(back.curves[0].val_accuracy, 0.9f);
  EXPECT_EQ(back.best_val_loss, 0.4f);
  ASSERT_EQ(back.params.count("w"), 1u);
  EXPECT_EQ(std::memcmp(back.params.at("w").data(), w.data(),
                        w.numel() * sizeof(float)),
            0);
  ASSERT_EQ(back.opt_m.size(), 1u);
  EXPECT_EQ(back.opt_steps, 44u);
}

TEST_F(ResilTest, KilledRunResumesBitwiseIdentical) {
  const core::EncodedDataset data = tiny_dataset();
  core::TrainConfig config;
  config.epochs = 4;
  config.batch_size = 8;
  config.lr = 2e-3f;
  config.select_best_epoch = true;  // exercises best-snapshot persistence

  // Reference: the uninterrupted run.
  Rng rng_a(5);
  core::PragFormer model_a(tiny_model_config(), rng_a);
  const auto curves_a = train_classifier(model_a, data, data, config, rng_a);

  // Crashed run: same seed, checkpoint every 2 batches, killed by an
  // injected fault mid-epoch (arrival 11 of 16 = epoch 2, batch 3).
  obs::set_enabled(true);
  const std::uint64_t resumes_before =
      obs::metrics().counter("clpp.resil.ckpt_resumes").value();
  core::TrainConfig ckpt_config = config;
  ckpt_config.checkpoint_dir = dir_.string();
  ckpt_config.checkpoint_every = 2;
  Rng rng_b(5);
  core::PragFormer model_b(tiny_model_config(), rng_b);
  resil::set_fault_plan(resil::FaultPlan::parse("train.batch:11"));
  EXPECT_THROW(train_classifier(model_b, data, data, ckpt_config, rng_b),
               resil::InjectedFault);
  resil::clear_fault_plan();
  ASSERT_TRUE(resil::file_exists(core::trainer_checkpoint_path(dir_.string())));

  // Resume: fresh process state (new model + RNG from the same seed), the
  // checkpoint supplies everything else.
  Rng rng_c(5);
  core::PragFormer model_c(tiny_model_config(), rng_c);
  const auto curves_c = train_classifier(model_c, data, data, ckpt_config, rng_c);
  EXPECT_GE(obs::metrics().counter("clpp.resil.ckpt_resumes").value(),
            resumes_before + 1);
  expect_equal_curves(curves_a, curves_c);
  expect_bitwise_equal_params(model_a, model_c);

  // Resuming a *finished* run re-trains nothing and reproduces the same
  // final state from the checkpoint alone.
  Rng rng_d(5);
  core::PragFormer model_d(tiny_model_config(), rng_d);
  const auto curves_d = train_classifier(model_d, data, data, ckpt_config, rng_d);
  expect_equal_curves(curves_a, curves_d);
  expect_bitwise_equal_params(model_a, model_d);
}

TEST_F(ResilTest, EpochBoundaryKillAlsoResumesBitwise) {
  const core::EncodedDataset data = tiny_dataset();
  core::TrainConfig config;
  config.epochs = 3;
  config.batch_size = 8;
  config.lr = 2e-3f;

  Rng rng_a(7);
  core::PragFormer model_a(tiny_model_config(), rng_a);
  const auto curves_a = train_classifier(model_a, data, data, config, rng_a);

  // Kill at the first batch of epoch 1: the only checkpoint is the epoch-0
  // boundary save (checkpoint_every = 0 -> epoch ends only).
  core::TrainConfig ckpt_config = config;
  ckpt_config.checkpoint_dir = dir_.string();
  Rng rng_b(7);
  core::PragFormer model_b(tiny_model_config(), rng_b);
  resil::set_fault_plan(resil::FaultPlan::parse("train.batch:5"));
  EXPECT_THROW(train_classifier(model_b, data, data, ckpt_config, rng_b),
               resil::InjectedFault);
  resil::clear_fault_plan();

  Rng rng_c(7);
  core::PragFormer model_c(tiny_model_config(), rng_c);
  const auto curves_c = train_classifier(model_c, data, data, ckpt_config, rng_c);
  expect_equal_curves(curves_a, curves_c);
  expect_bitwise_equal_params(model_a, model_c);
}

TEST_F(ResilTest, CorruptCheckpointDegradesToFreshRun) {
  const core::EncodedDataset data = tiny_dataset(16);
  core::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.checkpoint_dir = dir_.string();
  spew(core::trainer_checkpoint_path(dir_.string()), "garbage, not a container");

  obs::set_enabled(true);
  const std::uint64_t degraded_before =
      obs::metrics().counter("clpp.resil.degraded_loads").value();
  Rng rng(11);
  core::PragFormer model(tiny_model_config(), rng);
  const auto curves = train_classifier(model, data, data, config, rng);
  ASSERT_EQ(curves.size(), 2u);
  EXPECT_EQ(obs::metrics().counter("clpp.resil.degraded_loads").value(),
            degraded_before + 1);
  // The fresh run overwrote the garbage with a valid checkpoint.
  EXPECT_NO_THROW(core::load_trainer_checkpoint(
      core::trainer_checkpoint_path(dir_.string())));
}

TEST_F(ResilTest, IncompatibleCheckpointDegradesToFreshRun) {
  // A well-formed checkpoint for a *different* dataset (wrong row count)
  // must not be half-applied: the run starts fresh.
  core::TrainerCheckpoint ck;
  ck.order = {0, 1, 2};  // dataset below has 16 rows
  core::save_trainer_checkpoint(core::trainer_checkpoint_path(dir_.string()), ck);

  obs::set_enabled(true);
  const std::uint64_t degraded_before =
      obs::metrics().counter("clpp.resil.degraded_loads").value();
  const core::EncodedDataset data = tiny_dataset(16);
  core::TrainConfig config;
  config.epochs = 1;
  config.batch_size = 8;
  config.checkpoint_dir = dir_.string();
  Rng rng(12);
  core::PragFormer model(tiny_model_config(), rng);
  const auto curves = train_classifier(model, data, data, config, rng);
  ASSERT_EQ(curves.size(), 1u);
  EXPECT_EQ(obs::metrics().counter("clpp.resil.degraded_loads").value(),
            degraded_before + 1);
}

TEST_F(ResilTest, CheckpointSaveFailureWarnsAndTrainingContinues) {
  const core::EncodedDataset data = tiny_dataset(16);
  core::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  // A directory that does not exist: every save fails after retries.
  config.checkpoint_dir = path("missing") + "/nested";

  obs::set_enabled(true);
  const std::uint64_t failures_before =
      obs::metrics().counter("clpp.resil.ckpt_save_failures").value();
  Rng rng(13);
  core::PragFormer model(tiny_model_config(), rng);
  const auto curves = train_classifier(model, data, data, config, rng);
  ASSERT_EQ(curves.size(), 2u);
  EXPECT_GE(obs::metrics().counter("clpp.resil.ckpt_save_failures").value(),
            failures_before + 2);
}

TEST_F(ResilTest, PipelineScopesCheckpointDirPerTask) {
  core::PipelineConfig config;
  config.generator.size = 120;
  config.generator.seed = 2023;
  config.max_len = 32;
  config.encoder.dim = 16;
  config.encoder.heads = 2;
  config.encoder.layers = 1;
  config.encoder.ffn_dim = 24;
  config.mlm_pretrain = false;
  config.train.epochs = 1;
  config.train.batch_size = 16;
  config.train.checkpoint_dir = path("ckpts");

  obs::set_enabled(true);
  const std::uint64_t resumes_before =
      obs::metrics().counter("clpp.resil.ckpt_resumes").value();
  const std::uint64_t degraded_before =
      obs::metrics().counter("clpp.resil.degraded_loads").value();
  core::Pipeline pipeline(config);
  (void)pipeline.train_task(corpus::Task::kDirective);
  (void)pipeline.train_task(corpus::Task::kPrivate);
  // Each task checkpoints into its own subdirectory; the second task must
  // start fresh, not resume from (or degrade on) the first task's file.
  EXPECT_TRUE(
      resil::file_exists(core::trainer_checkpoint_path(path("ckpts/directive"))));
  EXPECT_TRUE(
      resil::file_exists(core::trainer_checkpoint_path(path("ckpts/private"))));
  EXPECT_EQ(obs::metrics().counter("clpp.resil.ckpt_resumes").value(),
            resumes_before);
  EXPECT_EQ(obs::metrics().counter("clpp.resil.degraded_loads").value(),
            degraded_before);
}

// --------------------------------------------------------- MLM cache

TEST_F(ResilTest, MlmCacheDegradesOnCorruptionThenRewrites) {
  core::PipelineConfig config;
  config.generator.size = 120;
  config.generator.seed = 2023;
  config.max_len = 32;
  config.encoder.dim = 16;
  config.encoder.heads = 2;
  config.encoder.layers = 1;
  config.encoder.ffn_dim = 24;
  config.mlm.epochs = 1;
  config.mlm_cache_path = path("mlm.ckpt");
  spew(config.mlm_cache_path, "corrupt cache bytes");

  obs::set_enabled(true);
  auto& degraded = obs::metrics().counter("clpp.resil.degraded_loads");
  const std::uint64_t degraded_before = degraded.value();
  core::Pipeline first(config);
  const auto& computed = first.mlm_checkpoint();
  EXPECT_FALSE(computed.empty());
  EXPECT_EQ(degraded.value(), degraded_before + 1);

  // The recomputed checkpoint was rewritten; a second pipeline loads it
  // from cache without degrading again, bit-for-bit.
  core::Pipeline second(config);
  const auto& cached = second.mlm_checkpoint();
  EXPECT_EQ(degraded.value(), degraded_before + 1);
  ASSERT_EQ(cached.size(), computed.size());
  for (const auto& [name, tensor] : computed) {
    ASSERT_EQ(cached.count(name), 1u) << name;
    const Tensor& other = cached.at(name);
    ASSERT_EQ(other.shape(), tensor.shape()) << name;
    EXPECT_EQ(std::memcmp(other.data(), tensor.data(),
                          tensor.numel() * sizeof(float)),
              0)
        << name;
  }
}

}  // namespace
}  // namespace clpp
