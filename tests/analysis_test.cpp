// Tests for the dependence-analysis substrate: access collection, loop
// canonicalization, affine subscripts, dependence verdicts, side effects.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/accesses.h"
#include "analysis/ddtest.h"
#include "analysis/depend.h"
#include "analysis/loopinfo.h"
#include "analysis/sideeffects.h"
#include "frontend/parser.h"

namespace clpp::analysis {
namespace {

using frontend::NodeKind;
using frontend::NodePtr;
using frontend::parse_expression;
using frontend::parse_snippet;

const frontend::Node& first_for(const frontend::Node& unit) {
  for (const auto& c : unit.children)
    if (c->kind == NodeKind::kFor) return *c;
  throw std::runtime_error("no for loop in test snippet");
}

LoopVerdict analyze_with(const char* code, AnalyzerOptions options = {}) {
  static std::vector<NodePtr> keep_alive;  // verdicts borrow nothing, but
                                           // keep units alive for safety
  keep_alive.push_back(parse_snippet(code));
  const frontend::Node& unit = *keep_alive.back();
  SideEffectOracle oracle(unit);
  DependenceAnalyzer analyzer(oracle, options);
  return analyzer.analyze(first_for(unit));
}

// --- access collection -------------------------------------------------------

TEST(Accesses, ReadsAndWrites) {
  const NodePtr unit = parse_snippet("a[i] = b[i] + c;");
  const AccessSet set = collect_accesses(*unit);
  EXPECT_TRUE(set.is_written("a"));
  EXPECT_FALSE(set.is_read("a"));
  EXPECT_TRUE(set.is_read("b"));
  EXPECT_FALSE(set.is_written("b"));
  EXPECT_TRUE(set.is_read("c"));
  EXPECT_TRUE(set.is_read("i"));
}

TEST(Accesses, CompoundAssignmentReadsBeforeWrite) {
  const NodePtr unit = parse_snippet("s += a[i];");
  const AccessSet set = collect_accesses(*unit);
  const auto& all = set.accesses;
  // First access of s must be the read (program order of s += e).
  auto it = std::find_if(all.begin(), all.end(),
                         [](const Access& a) { return a.variable == "s"; });
  ASSERT_NE(it, all.end());
  EXPECT_FALSE(it->is_write);
  EXPECT_TRUE(set.is_written("s"));
}

TEST(Accesses, IncrementIsReadModifyWrite) {
  const NodePtr unit = parse_snippet("count++;");
  const AccessSet set = collect_accesses(*unit);
  EXPECT_TRUE(set.is_read("count"));
  EXPECT_TRUE(set.is_written("count"));
}

TEST(Accesses, MultiDimSubscriptsCollected) {
  const NodePtr unit = parse_snippet("m[i][j] = 0;");
  const AccessSet set = collect_accesses(*unit);
  const auto writes = set.writes_of("m");
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(writes[0]->subscripts.size(), 2u);
  EXPECT_TRUE(writes[0]->is_array);
}

TEST(Accesses, PointerDerefWriteIsHazard) {
  const NodePtr unit = parse_snippet("*p = 1;");
  EXPECT_TRUE(collect_accesses(*unit).hazards.pointer_deref_write);
}

TEST(Accesses, StructWriteIsHazard) {
  const NodePtr unit = parse_snippet("node->value = 1;");
  const AccessSet set = collect_accesses(*unit);
  EXPECT_TRUE(set.hazards.struct_access);
  EXPECT_TRUE(set.hazards.pointer_deref_write);
}

TEST(Accesses, AddressTakenIsHazard) {
  const NodePtr unit = parse_snippet("f(&x);");
  EXPECT_TRUE(collect_accesses(*unit).hazards.address_taken);
}

TEST(Accesses, CalleesRecorded) {
  const NodePtr unit = parse_snippet("y = f(g(x));");
  const auto& called = collect_accesses(*unit).hazards.called_functions;
  ASSERT_EQ(called.size(), 2u);
  EXPECT_EQ(called[0], "f");
  EXPECT_EQ(called[1], "g");
}

// --- canonical loops ------------------------------------------------------------

TEST(Canonical, BasicUpwardLoop) {
  const NodePtr unit = parse_snippet("for (i = 0; i < n; i++) ;");
  const auto loop = canonicalize(first_for(*unit));
  ASSERT_TRUE(loop.has_value());
  EXPECT_EQ(loop->induction, "i");
  EXPECT_EQ(loop->relation, "<");
  EXPECT_EQ(loop->step, 1);
  EXPECT_EQ(loop->direction, LoopDirection::kUp);
}

TEST(Canonical, DeclaredInductionAndStride) {
  const NodePtr unit = parse_snippet("for (int i = 2; i <= 100; i += 2) ;");
  const auto loop = canonicalize(first_for(*unit));
  ASSERT_TRUE(loop.has_value());
  EXPECT_TRUE(loop->declared_in_init);
  EXPECT_EQ(loop->step, 2);
  ASSERT_TRUE(loop->static_trip_count().has_value());
  EXPECT_EQ(*loop->static_trip_count(), 50);
}

TEST(Canonical, DownwardLoop) {
  const NodePtr unit = parse_snippet("for (i = n - 1; i >= 0; i--) ;");
  const auto loop = canonicalize(first_for(*unit));
  ASSERT_TRUE(loop.has_value());
  EXPECT_EQ(loop->direction, LoopDirection::kDown);
  EXPECT_EQ(loop->step, -1);
}

TEST(Canonical, ReversedComparison) {
  const NodePtr unit = parse_snippet("for (i = 0; n > i; i = i + 1) ;");
  const auto loop = canonicalize(first_for(*unit));
  ASSERT_TRUE(loop.has_value());
  EXPECT_EQ(loop->relation, "<");
  EXPECT_EQ(loop->step, 1);
}

TEST(Canonical, RejectsNonCanonicalForms) {
  for (const char* code :
       {"for (;;) ;",                          // no pieces at all
        "for (i = 0; i != n; i++) ;",          // '!=' relation
        "for (i = 0; i < n; i *= 2) ;",        // multiplicative step
        "for (i = 0; i < n; j++) ;",           // step on another variable
        "for (i = 0; i < n; i--) ;",           // step away from bound
        "for (p = head; p; p = p->next) ;"}) { // pointer walk
    const NodePtr unit = parse_snippet(code);
    EXPECT_FALSE(canonicalize(first_for(*unit)).has_value()) << code;
  }
}

TEST(Canonical, StaticTripCountZeroForEmptyRange) {
  const NodePtr unit = parse_snippet("for (i = 10; i < 10; i++) ;");
  const auto loop = canonicalize(first_for(*unit));
  ASSERT_TRUE(loop.has_value());
  EXPECT_EQ(loop->static_trip_count().value_or(-1), 0);
}

TEST(Canonical, EarlyExitDetection) {
  const NodePtr a = parse_snippet("for (i = 0; i < n; i++) { if (x) break; }");
  EXPECT_TRUE(has_early_exit(first_for(*a).child(3)));
  const NodePtr b = parse_snippet(
      "for (i = 0; i < n; i++) { for (j = 0; j < m; j++) { if (x) break; } }");
  EXPECT_FALSE(has_early_exit(first_for(*b).child(3)))
      << "break in a nested loop does not escape the outer body";
  const NodePtr c = parse_snippet("for (i = 0; i < n; i++) { return; }");
  EXPECT_TRUE(has_early_exit(first_for(*c).child(3)));
}

// --- affine subscripts -------------------------------------------------------------

TEST(Affine, RecognizesCommonForms) {
  const NodePtr i = parse_expression("i");
  EXPECT_EQ(analyze_subscript(*i, "i"),
            (Affine{Affine::Kind::kAffine, 1, 0, {}}));
  const NodePtr ip1 = parse_expression("i + 1");
  EXPECT_EQ(analyze_subscript(*ip1, "i"),
            (Affine{Affine::Kind::kAffine, 1, 1, {}}));
  const NodePtr im2 = parse_expression("i - 2");
  EXPECT_EQ(analyze_subscript(*im2, "i"),
            (Affine{Affine::Kind::kAffine, 1, -2, {}}));
  const NodePtr two_i = parse_expression("2 * i + 3");
  EXPECT_EQ(analyze_subscript(*two_i, "i"),
            (Affine{Affine::Kind::kAffine, 2, 3, {}}));
  const NodePtr c = parse_expression("7");
  EXPECT_EQ(analyze_subscript(*c, "i"),
            (Affine{Affine::Kind::kAffine, 0, 7, {}}));
}

TEST(Affine, InvariantAndComplex) {
  const NodePtr j = parse_expression("j");
  EXPECT_EQ(analyze_subscript(*j, "i").kind, Affine::Kind::kInvariant);
  const NodePtr nm1 = parse_expression("n - 1");
  EXPECT_EQ(analyze_subscript(*nm1, "i").kind, Affine::Kind::kInvariant);
  const NodePtr ii = parse_expression("i * i");
  EXPECT_EQ(analyze_subscript(*ii, "i").kind, Affine::Kind::kComplex);
  const NodePtr idx = parse_expression("index[i]");
  EXPECT_EQ(analyze_subscript(*idx, "i").kind, Affine::Kind::kComplex);
}

TEST(Affine, LinearizedTwoD) {
  // G[(i * NL) + j]: coeff symbolic -> complex (conservative).
  const NodePtr e = parse_expression("(i * NL) + j");
  EXPECT_EQ(analyze_subscript(*e, "i").kind, Affine::Kind::kComplex);
}

TEST(Affine, UnaryMinusNegatesCoefficients) {
  const NodePtr neg_i = parse_expression("-i");
  EXPECT_EQ(analyze_subscript(*neg_i, "i"),
            (Affine{Affine::Kind::kAffine, -1, 0, {}}));
  const NodePtr neg_expr = parse_expression("-(i + 2)");
  EXPECT_EQ(analyze_subscript(*neg_expr, "i"),
            (Affine{Affine::Kind::kAffine, -1, -2, {}}));
  const NodePtr plus_i = parse_expression("+i");
  EXPECT_EQ(analyze_subscript(*plus_i, "i"),
            (Affine{Affine::Kind::kAffine, 1, 0, {}}));
}

TEST(Affine, SymbolicAddendKeepsReversedSubscriptAffine) {
  // c - i: coeff -1 with symbolic addend +c (mirror/reverse idiom).
  const NodePtr cmi = parse_expression("c - i");
  EXPECT_EQ(analyze_subscript(*cmi, "i"),
            (Affine{Affine::Kind::kAffine, -1, 0, "c", 1}));
  // i - c: coeff 1 with symbolic addend -c.
  const NodePtr imc = parse_expression("i - c");
  EXPECT_EQ(analyze_subscript(*imc, "i"),
            (Affine{Affine::Kind::kAffine, 1, 0, "c", -1}));
  // c - i + 1 keeps literal offset and the addend.
  const NodePtr cmi1 = parse_expression("c - i + 1");
  EXPECT_EQ(analyze_subscript(*cmi1, "i"),
            (Affine{Affine::Kind::kAffine, -1, 1, "c", 1}));
  // Two symbolic addends are beyond the single-symbol form.
  const NodePtr two = parse_expression("c - i + d");
  EXPECT_EQ(analyze_subscript(*two, "i").kind, Affine::Kind::kComplex);
}

TEST(DimRelationTest, SymbolicAddendsMustMatch) {
  const Affine rev{Affine::Kind::kAffine, -1, 0, "c", 1};
  const Affine rev_m1{Affine::Kind::kAffine, -1, -1, "c", 1};
  const Affine rev_d{Affine::Kind::kAffine, -1, 0, "d", 1};
  const Affine rev_neg{Affine::Kind::kAffine, -1, 0, "c", -1};
  const Affine plain{Affine::Kind::kAffine, -1, 0, {}};
  // Identical symbols: the distance test stays exact.
  EXPECT_EQ(compare_dimension(rev, rev), DimRelation::kSameIterationOnly);
  EXPECT_EQ(compare_dimension(rev, rev_m1), DimRelation::kCarried);
  // Different symbol, different sign, or symbol-vs-none: conservative.
  EXPECT_EQ(compare_dimension(rev, rev_d), DimRelation::kUnknown);
  EXPECT_EQ(compare_dimension(rev, rev_neg), DimRelation::kUnknown);
  EXPECT_EQ(compare_dimension(rev, plain), DimRelation::kUnknown);
}

TEST(Verdict, ReversedWriteSubscriptParallelizes) {
  // a[c - i] hits a distinct element every iteration: no carried dep.
  const auto v = analyze_with("for (i = 0; i < n; i++) a[c - i] = b[i];");
  EXPECT_TRUE(v.parallelizable) << "reverse-indexed write should be provably safe";
  EXPECT_TRUE(v.dependences.empty());
}

TEST(DimRelationTest, Cases) {
  const Affine i{Affine::Kind::kAffine, 1, 0, {}};
  const Affine im1{Affine::Kind::kAffine, 1, -1, {}};
  const Affine c0{Affine::Kind::kAffine, 0, 0, {}};
  const Affine c1{Affine::Kind::kAffine, 0, 1, {}};
  const Affine inv_j{Affine::Kind::kInvariant, 0, 0, "j"};
  const Affine inv_k{Affine::Kind::kInvariant, 0, 0, "k"};
  EXPECT_EQ(compare_dimension(i, i), DimRelation::kSameIterationOnly);
  EXPECT_EQ(compare_dimension(i, im1), DimRelation::kCarried);
  EXPECT_EQ(compare_dimension(c0, c1), DimRelation::kDisjoint);
  EXPECT_EQ(compare_dimension(c0, c0), DimRelation::kCarried);
  EXPECT_EQ(compare_dimension(inv_j, inv_j), DimRelation::kCarried);
  EXPECT_EQ(compare_dimension(inv_j, inv_k), DimRelation::kUnknown);
  EXPECT_EQ(compare_dimension(i, inv_j), DimRelation::kUnknown);
}

// --- whole-loop verdicts -------------------------------------------------------------

TEST(Verdict, IndependentElementwiseLoopParallelizes) {
  const auto v = analyze_with("for (i = 0; i < n; i++) a[i] = b[i] + c[i];");
  EXPECT_TRUE(v.canonical);
  EXPECT_TRUE(v.parallelizable);
  EXPECT_TRUE(v.dependences.empty());
}

TEST(Verdict, LoopCarriedRecurrenceRejected) {
  const auto v = analyze_with("for (i = 1; i < n; i++) a[i] = a[i - 1] + 1;");
  EXPECT_FALSE(v.parallelizable);
  ASSERT_FALSE(v.dependences.empty());
  EXPECT_EQ(v.dependences[0].variable, "a");
}

TEST(Verdict, ReadOnlyOffsetIsFine) {
  // a[i] = b[i-1]: write and read touch different arrays.
  const auto v = analyze_with("for (i = 1; i < n; i++) a[i] = b[i - 1] + 1;");
  EXPECT_TRUE(v.parallelizable);
}

TEST(Verdict, WriteReadSameArrayDisjointOffsets) {
  // a[2*i] = a[2*i + 1]: distance 1 not divisible by 2 -> disjoint.
  const auto v = analyze_with("for (i = 0; i < n; i++) a[2 * i] = a[2 * i + 1];");
  EXPECT_TRUE(v.parallelizable);
}

TEST(Verdict, SumReductionRecognized) {
  const auto v = analyze_with("for (i = 0; i < n; i++) sum += a[i];");
  EXPECT_TRUE(v.parallelizable);
  ASSERT_EQ(v.reductions.size(), 1u);
  EXPECT_EQ(v.reductions[0].variable, "sum");
  EXPECT_EQ(v.reductions[0].op, frontend::ReductionOp::kAdd);
}

TEST(Verdict, ExplicitFormReduction) {
  const auto v = analyze_with("for (i = 0; i < n; i++) p = p * a[i];");
  ASSERT_EQ(v.reductions.size(), 1u);
  EXPECT_EQ(v.reductions[0].op, frontend::ReductionOp::kMul);
}

TEST(Verdict, MinMaxReductionNeedsKnob) {
  const char* code =
      "for (i = 0; i < n; i++) { if (a[i] > m) m = a[i]; }";
  const auto strict = analyze_with(code);
  EXPECT_FALSE(strict.parallelizable)
      << "without the knob the conditional max is a carried scalar dep";
  AnalyzerOptions opts;
  opts.recognize_minmax_reduction = true;
  const auto relaxed = analyze_with(code, opts);
  EXPECT_TRUE(relaxed.parallelizable);
  ASSERT_EQ(relaxed.reductions.size(), 1u);
  EXPECT_EQ(relaxed.reductions[0].op, frontend::ReductionOp::kMax);
}

TEST(Verdict, ReductionDisabledByKnob) {
  AnalyzerOptions opts;
  opts.recognize_reduction = false;
  const auto v = analyze_with("for (i = 0; i < n; i++) sum += a[i];", opts);
  EXPECT_FALSE(v.parallelizable);
}

TEST(Verdict, ScalarTempPrivatizable) {
  const auto v = analyze_with(
      "for (i = 0; i < n; i++) { t = a[i] * 2; b[i] = t + 1; }");
  EXPECT_TRUE(v.parallelizable);
  ASSERT_EQ(v.private_candidates.size(), 1u);
  EXPECT_EQ(v.private_candidates[0], "t");
}

TEST(Verdict, UseBeforeDefScalarIsCarried) {
  const auto v = analyze_with(
      "for (i = 0; i < n; i++) { b[i] = t; t = a[i]; }");
  EXPECT_FALSE(v.parallelizable);
}

TEST(Verdict, NestedLoopIndexPrivatized) {
  const auto v = analyze_with(
      "for (i = 0; i < n; i++) for (j = 0; j < m; j++) c[i][j] = 0;");
  EXPECT_TRUE(v.parallelizable);
  ASSERT_EQ(v.private_candidates.size(), 1u);
  EXPECT_EQ(v.private_candidates[0], "j");
}

TEST(Verdict, InnerSharedRowWriteIsCarried) {
  // Every outer iteration writes all of row[j]: outer not parallel.
  const auto v = analyze_with(
      "for (i = 0; i < n; i++) for (j = 0; j < m; j++) row[j] += a[i][j];");
  EXPECT_FALSE(v.parallelizable);
}

TEST(Verdict, IoCallRejected) {
  const auto v = analyze_with(
      "for (i = 0; i < n; i++) fprintf(f, \"%d\\n\", arr[i]);");
  EXPECT_FALSE(v.parallelizable);
  EXPECT_FALSE(v.bailed);  // compiled, judged unprofitable/incorrect
}

TEST(Verdict, MallocRejected) {
  const auto v = analyze_with(
      "for (i = 0; i < n; i++) p = malloc(16);");
  EXPECT_FALSE(v.parallelizable);
}

TEST(Verdict, UnknownCallBailsConservatively) {
  const auto v = analyze_with("for (i = 0; i < n; i++) Calc(i);");
  EXPECT_TRUE(v.bailed);
  EXPECT_FALSE(v.parallelizable);
}

TEST(Verdict, UnknownCallAllowedWhenAggressive) {
  AnalyzerOptions opts;
  opts.assume_unknown_calls_pure = true;
  const auto v = analyze_with("for (i = 0; i < n; i++) Calc(i);", opts);
  EXPECT_TRUE(v.parallelizable);
}

TEST(Verdict, PureWhitelistedCallAccepted) {
  const auto v = analyze_with(
      "for (i = 0; i < n; i++) b[i] = sqrt(a[i]);");
  EXPECT_TRUE(v.parallelizable);
}

TEST(Verdict, LocalPureFunctionAnalyzed) {
  const auto v = analyze_with(
      "double square(double x) { return x * x; }\n"
      "for (i = 0; i < n; i++) b[i] = square(a[i]);");
  EXPECT_TRUE(v.parallelizable);
}

TEST(Verdict, LocalImpureFunctionRejected) {
  const auto v = analyze_with(
      "int counter;\n"
      "int bump(int x) { counter += x; return counter; }\n"
      "for (i = 0; i < n; i++) b[i] = bump(a[i]);");
  EXPECT_FALSE(v.parallelizable);
}

TEST(Verdict, TripCountThreshold) {
  AnalyzerOptions opts;
  opts.min_trip_count = 8;
  const auto small = analyze_with("for (i = 0; i < 4; i++) a[i] = 0;", opts);
  EXPECT_FALSE(small.parallelizable);
  const auto big = analyze_with("for (i = 0; i < 1000; i++) a[i] = 0;", opts);
  EXPECT_TRUE(big.parallelizable);
}

TEST(Verdict, DynamicScheduleHint) {
  AnalyzerOptions opts;
  opts.suggest_dynamic_schedule = true;
  const auto v = analyze_with(
      "int MoreCalc(int i) { return i * 2; }\n"
      "int Calc2(int i) { return i + 1; }\n"
      "for (i = 0; i <= N; i++) if (MoreCalc(i)) x[i] = Calc2(i);", opts);
  EXPECT_TRUE(v.parallelizable);
  EXPECT_EQ(v.schedule_hint, frontend::ScheduleKind::kDynamic);
}

TEST(Verdict, StructAccessBailsByDefault) {
  const auto v = analyze_with(
      "for (i = 0; i < n; i++) total += items[i].weight;");
  EXPECT_TRUE(v.bailed);
}

TEST(Verdict, EarlyExitRejected) {
  const auto v = analyze_with(
      "for (i = 0; i < n; i++) { if (a[i] == key) break; }");
  EXPECT_FALSE(v.parallelizable);
}

// --- side effects ------------------------------------------------------------------

TEST(SideEffects, Whitelists) {
  EXPECT_TRUE(SideEffectOracle::is_whitelisted_pure("sqrt"));
  EXPECT_TRUE(SideEffectOracle::is_known_io("printf"));
  EXPECT_TRUE(SideEffectOracle::is_known_alloc("malloc"));
  EXPECT_FALSE(SideEffectOracle::is_whitelisted_pure("frobnicate"));
}

TEST(SideEffects, LocalBodyClassification) {
  const NodePtr unit = parse_snippet(
      "double triple(double x) { return 3 * x; }\n"
      "void fill(double *v, int n) { for (int i = 0; i < n; i++) v[i] = 0; }\n"
      "void log_it(int x) { printf(\"%d\", x); }\n");
  SideEffectOracle oracle(*unit);
  EXPECT_EQ(oracle.effect_of("triple"), CallEffect::kPure);
  EXPECT_EQ(oracle.effect_of("fill"), CallEffect::kWritesArgs);
  EXPECT_EQ(oracle.effect_of("log_it"), CallEffect::kIo);
  EXPECT_EQ(oracle.effect_of("mystery"), CallEffect::kUnknown);
}

TEST(SideEffects, TransitiveThroughLocalCalls) {
  const NodePtr unit = parse_snippet(
      "double inner(double x) { return x * 2; }\n"
      "double outer(double x) { return inner(x) + 1; }\n"
      "double bad(double x) { printf(\"x\"); return x; }\n"
      "double worse(double x) { return bad(x); }\n");
  SideEffectOracle oracle(*unit);
  EXPECT_EQ(oracle.effect_of("outer"), CallEffect::kPure);
  EXPECT_EQ(oracle.effect_of("worse"), CallEffect::kIo);
}

TEST(SideEffects, RecursionDoesNotLoopForever) {
  const NodePtr unit = parse_snippet(
      "int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }");
  SideEffectOracle oracle(*unit);
  // Self-recursive functions cannot be proven pure by our analysis.
  EXPECT_EQ(oracle.effect_of("fact"), CallEffect::kUnknown);
}

TEST(SideEffects, WorstEffectOrdering) {
  EXPECT_EQ(worse(CallEffect::kPure, CallEffect::kIo), CallEffect::kIo);
  EXPECT_EQ(worse(CallEffect::kUnknown, CallEffect::kIo), CallEffect::kUnknown);
  EXPECT_EQ(worse(CallEffect::kWritesArgs, CallEffect::kPure),
            CallEffect::kWritesArgs);
}

// --- ddtest (dependence engine v2) -------------------------------------------------

TEST(AffineFormTest, MultiVariableWithLiteralParts) {
  const NodePtr expr = parse_expression("2 * i + 3 * j - 1");
  const AffineForm form = analyze_affine(*expr, {{"i", "j"}, {}});
  ASSERT_TRUE(form.affine);
  EXPECT_EQ(form.coeffs.at("i"), 2);
  EXPECT_EQ(form.coeffs.at("j"), 3);
  EXPECT_EQ(form.offset, -1);
  EXPECT_TRUE(form.symbols.empty());
}

TEST(AffineFormTest, InvariantSymbolsFold) {
  const NodePtr expr = parse_expression("i + n - 1");
  const AffineForm form = analyze_affine(*expr, {{"i"}, {}});
  ASSERT_TRUE(form.affine);
  EXPECT_EQ(form.coeffs.at("i"), 1);
  EXPECT_EQ(form.symbols.at("n"), 1);
  EXPECT_EQ(form.offset, -1);
}

TEST(AffineFormTest, MutatedNameIsNotAffine) {
  const NodePtr expr = parse_expression("i + t");
  const AffineForm form = analyze_affine(*expr, {{"i"}, {"t"}});
  EXPECT_FALSE(form.affine);
}

TEST(DdtestV2, StrongSivPinsExactDistance) {
  const LoopVerdict v = analyze_with("for (i = 2; i < n; i++) a[i] = a[i - 2] + 1.0;");
  EXPECT_FALSE(v.parallelizable);
  EXPECT_TRUE(v.exact());
  ASSERT_EQ(v.dependences.size(), 1u);
  ASSERT_TRUE(v.dependences[0].distance.has_value());
  EXPECT_EQ(*v.dependences[0].distance, 2);
  EXPECT_EQ(v.dependences[0].direction, "(<)");
}

TEST(DdtestV2, ScaledCoefficientDistanceDividesThrough) {
  // Write a[2i], read a[2(i-2)]: collision exactly two iterations apart.
  const LoopVerdict v =
      analyze_with("for (i = 2; i < n; i++) a[2 * i] = a[2 * i - 4] + 1.0;");
  EXPECT_FALSE(v.parallelizable);
  EXPECT_TRUE(v.exact());
  ASSERT_EQ(v.dependences.size(), 1u);
  ASSERT_TRUE(v.dependences[0].distance.has_value());
  EXPECT_EQ(*v.dependences[0].distance, 2);
}

TEST(DdtestV2, StridedLoopProvesDisjointOffsets) {
  // i steps by 2: writes land on even elements, reads on odd ones. The seed
  // engine refused non-unit steps; v2 lowers to iteration counts.
  const LoopVerdict v =
      analyze_with("for (i = 0; i < n; i += 2) a[i] = a[i + 1] * 2.0;");
  EXPECT_TRUE(v.parallelizable);
  EXPECT_TRUE(v.exact());
}

TEST(DdtestV2, GcdTestProvesParityDisjoint) {
  const LoopVerdict v =
      analyze_with("for (i = 0; i < n; i++) a[2 * i] = a[2 * i + 1];");
  EXPECT_TRUE(v.parallelizable);
  EXPECT_TRUE(v.exact());
}

TEST(DdtestV2, BanerjeeBoundsRefuteLinearizedCollision) {
  // 8*i + j with j in [0, 4): the offset 4 cannot be absorbed by dj alone
  // and 8*di overshoots. Needs the literal inner trip count (Banerjee),
  // GCD alone would not refute it.
  const LoopVerdict v = analyze_with(
      "for (i = 0; i < 8; i++)\n"
      "  for (j = 0; j < 4; j++)\n"
      "    a[8 * i + j] = a[8 * i + j + 4];");
  EXPECT_TRUE(v.parallelizable);
  EXPECT_TRUE(v.exact());
}

TEST(DdtestV2, BanerjeeBoundsKeepRealCollision) {
  // Same form with j in [0, 8): now (di, dj) = (0, 4) etc. collide for real.
  const LoopVerdict v = analyze_with(
      "for (i = 0; i < 8; i++)\n"
      "  for (j = 0; j < 8; j++)\n"
      "    a[8 * i + j] = a[8 * i + j + 4];");
  EXPECT_FALSE(v.parallelizable);
  EXPECT_TRUE(v.exact());
}

TEST(DdtestV2, CoupledSubscriptsIntersectToDisjoint) {
  // Diagonal write vs subdiagonal read: dim 0 demands "=", dim 1 demands
  // "<" — the per-dimension intersection is empty.
  const LoopVerdict v =
      analyze_with("for (i = 1; i < n; i++) A[i][i] = A[i][i - 1] + 1.0;");
  EXPECT_TRUE(v.parallelizable);
  EXPECT_TRUE(v.exact());
}

TEST(DdtestV2, TransposedCoupledSubscriptsStaySound) {
  // A[i][j] vs A[j][i] couples the dimensions; the fallback must keep the
  // (real) cross-iteration dependence rather than claim independence.
  const LoopVerdict v = analyze_with(
      "for (i = 0; i < n; i++)\n"
      "  for (j = 0; j < n; j++)\n"
      "    A[i][j] = A[j][i] + 1.0;");
  EXPECT_FALSE(v.parallelizable);
}

TEST(DdtestV2, TriangularLowerBoundHandled) {
  const LoopVerdict v = analyze_with(
      "for (i = 0; i < n; i++)\n"
      "  for (j = i; j < n; j++)\n"
      "    A[i][j] = A[i][j] * 2.0;");
  EXPECT_TRUE(v.parallelizable);
  EXPECT_TRUE(v.exact());
}

TEST(DdtestV2, AntiDependenceGetsGtDirection) {
  const LoopVerdict v = analyze_with("for (i = 0; i < n; i++) a[i] = a[i + 1];");
  EXPECT_FALSE(v.parallelizable);
  ASSERT_EQ(v.dependences.size(), 1u);
  ASSERT_TRUE(v.dependences[0].distance.has_value());
  EXPECT_EQ(*v.dependences[0].distance, 1);
  EXPECT_EQ(v.dependences[0].direction, "(>)");
}

TEST(DdtestV2, DirectionVectorAcrossNestLevels) {
  const LoopVerdict v = analyze_with(
      "for (i = 1; i < n; i++)\n"
      "  for (j = 0; j < m; j++)\n"
      "    A[i][j] = A[i - 1][j] + 1.0;");
  EXPECT_FALSE(v.parallelizable);
  EXPECT_TRUE(v.exact());
  ASSERT_EQ(v.dependences.size(), 1u);
  EXPECT_EQ(v.dependences[0].direction, "(<, =)");
  ASSERT_TRUE(v.dependences[0].distance.has_value());
  EXPECT_EQ(*v.dependences[0].distance, 1);
}

TEST(DdtestV2, LegacyEngineKnobFallsBackToSeedBehavior) {
  // The linearized-subscript snippet the seed engine gave up on: v2 is an
  // exact yes, the legacy knob reproduces the conservative refusal.
  const char* code =
      "for (i = 0; i < n; i++)\n"
      "  for (j = 0; j < m; j++)\n"
      "    c[i * m + j] = c[i * m + j] + 1.0;";
  const LoopVerdict v2 = analyze_with(code);
  EXPECT_TRUE(v2.parallelizable);
  EXPECT_TRUE(v2.exact());

  AnalyzerOptions legacy;
  legacy.exact_dependence_engine = false;
  const LoopVerdict seed = analyze_with(code, legacy);
  EXPECT_FALSE(seed.parallelizable);
  EXPECT_GT(seed.dep_pairs_unknown, 0u);
  EXPECT_FALSE(seed.exact());
}

TEST(DdtestV2, NestContextExposesDirectionBitmasks) {
  static NodePtr unit = parse_snippet(
      "for (i = 1; i < n; i++)\n"
      "  for (j = 0; j < m; j++)\n"
      "    A[i][j] = A[i - 1][j] + 1.0;");
  const frontend::Node& loop = first_for(*unit);
  NestContext nest(loop);
  const AccessSet accesses = collect_accesses(loop.child(3));
  const auto writes = accesses.writes_of("A");
  const auto reads = accesses.reads_of("A");
  ASSERT_EQ(writes.size(), 1u);
  ASSERT_EQ(reads.size(), 1u);
  const PairResult pair = nest.test_pair(*writes[0], *reads[0]);
  EXPECT_TRUE(pair.possible);
  EXPECT_TRUE(pair.exact);
  EXPECT_TRUE(pair.carried());
  ASSERT_EQ(pair.levels.size(), 2u);
  EXPECT_EQ(pair.levels[0].var, "i");
  EXPECT_EQ(pair.levels[0].dirs, kDirLt);
  ASSERT_TRUE(pair.levels[0].distance.has_value());
  EXPECT_EQ(*pair.levels[0].distance, 1);
  EXPECT_EQ(pair.levels[1].var, "j");
  EXPECT_EQ(pair.levels[1].dirs, kDirEq);
  ASSERT_TRUE(pair.carried_distance().has_value());
  EXPECT_EQ(*pair.carried_distance(), 1);
}

TEST(DdtestV2, DirectionTextRendering) {
  EXPECT_EQ(direction_text(kDirLt), "<");
  EXPECT_EQ(direction_text(kDirEq), "=");
  EXPECT_EQ(direction_text(kDirGt), ">");
  EXPECT_EQ(direction_text(kDirLt | kDirEq), "<=");
  EXPECT_EQ(direction_text(kDirAll), "*");
}

// --- corpus/realworld fixtures -----------------------------------------------------

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(CLPP_REALWORLD_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("missing fixture: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Analyzes every for loop of a fixture, outermost-first walk order.
std::vector<LoopVerdict> analyze_fixture(const std::string& name,
                                         AnalyzerOptions options = {}) {
  static std::vector<NodePtr> keep_alive;
  keep_alive.push_back(parse_snippet(read_fixture(name)));
  const frontend::Node& unit = *keep_alive.back();
  std::vector<const frontend::Node*> loops;
  frontend::walk(unit, [&](const frontend::Node& node, int) {
    if (node.kind == NodeKind::kFor) loops.push_back(&node);
  });
  SideEffectOracle oracle(unit);
  DependenceAnalyzer analyzer(oracle, options);
  std::vector<LoopVerdict> verdicts;
  for (const frontend::Node* loop : loops) verdicts.push_back(analyzer.analyze(*loop));
  return verdicts;
}

TEST(Realworld, GemmOuterLoopResolvesExactlyParallel) {
  const auto verdicts = analyze_fixture("gemm.c");
  ASSERT_EQ(verdicts.size(), 4u);
  // Outer i loop: parallelizable, and a proof — not a conservative default.
  EXPECT_TRUE(verdicts[0].parallelizable);
  EXPECT_TRUE(verdicts[0].exact());
  // The k loop re-writes C[i*nj + j] every iteration: carried, by proof.
  EXPECT_FALSE(verdicts[2].parallelizable);
  EXPECT_TRUE(verdicts[2].exact());
}

TEST(Realworld, GemmSeedEngineRefusedConservatively) {
  AnalyzerOptions legacy;
  legacy.exact_dependence_engine = false;
  const auto verdicts = analyze_fixture("gemm.c", legacy);
  ASSERT_EQ(verdicts.size(), 4u);
  EXPECT_FALSE(verdicts[0].parallelizable);
  EXPECT_GT(verdicts[0].dep_pairs_unknown, 0u);
}

TEST(Realworld, MvtOuterParallelInnerAccumulates) {
  const auto verdicts = analyze_fixture("mvt.c");
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_TRUE(verdicts[0].parallelizable);
  EXPECT_TRUE(verdicts[0].exact());
  // The j loop accumulates into x1[i]: loop-carried there.
  EXPECT_FALSE(verdicts[1].parallelizable);
}

TEST(Realworld, GemverRankTwoUpdateIsExactParallel) {
  const auto verdicts = analyze_fixture("gemver.c");
  ASSERT_EQ(verdicts.size(), 2u);
  for (const LoopVerdict& v : verdicts) {
    EXPECT_TRUE(v.parallelizable);
    EXPECT_TRUE(v.exact());
  }
}

TEST(Realworld, AtaxOuterLoopCarriedOnY) {
  const auto verdicts = analyze_fixture("atax.c");
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_FALSE(verdicts[0].parallelizable);
  EXPECT_TRUE(verdicts[0].exact());
  bool found_y = false;
  for (const Dependence& dep : verdicts[0].dependences)
    if (dep.variable == "y") found_y = true;
  EXPECT_TRUE(found_y);
}

TEST(Realworld, JacobiTimeLoopProvedCarriedSpaceLoopsParallel) {
  const auto verdicts = analyze_fixture("jacobi-1d.c");
  ASSERT_EQ(verdicts.size(), 3u);
  // v2 proves the t-loop carried exactly through the imperfect nest; the
  // seed engine only refused it as unknown.
  EXPECT_FALSE(verdicts[0].parallelizable);
  EXPECT_TRUE(verdicts[0].exact());
  EXPECT_TRUE(verdicts[1].parallelizable);
  EXPECT_TRUE(verdicts[2].parallelizable);

  AnalyzerOptions legacy;
  legacy.exact_dependence_engine = false;
  const auto seed = analyze_fixture("jacobi-1d.c", legacy);
  EXPECT_FALSE(seed[0].parallelizable);
  EXPECT_GT(seed[0].dep_pairs_unknown, 0u);
}

TEST(Realworld, NonParallelIirHasUnitDistance) {
  const auto verdicts = analyze_fixture("non_parallel.c");
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].parallelizable);
  EXPECT_TRUE(verdicts[0].exact());
  ASSERT_EQ(verdicts[0].dependences.size(), 1u);
  ASSERT_TRUE(verdicts[0].dependences[0].distance.has_value());
  EXPECT_EQ(*verdicts[0].dependences[0].distance, 1);
}

// --- decision provenance -----------------------------------------------------------

TEST(Provenance, StrongSivPinsDistanceAndDirection) {
  const LoopVerdict v =
      analyze_with("for (i = 1; i < n; i++) a[i] = a[i - 1] + 1;");
  const PairProvenance* carried = nullptr;
  for (const PairProvenance& p : v.pair_provenance)
    if (p.carried) carried = &p;
  ASSERT_NE(carried, nullptr);
  EXPECT_EQ(carried->array, "a");
  EXPECT_EQ(carried->test, "strong-siv");
  EXPECT_TRUE(carried->exact);
  ASSERT_TRUE(carried->distance.has_value());
  EXPECT_EQ(*carried->distance, 1);
  const std::string text = provenance_text(*carried);
  EXPECT_NE(text.find("strong-siv"), std::string::npos) << text;
  EXPECT_NE(text.find("distance 1"), std::string::npos) << text;
  EXPECT_NE(text.find("carried"), std::string::npos) << text;
}

TEST(Provenance, RecordedForRefutedPairsToo) {
  // Clean elementwise loop: the a[i]-vs-a[i] pair is tested, decided, and
  // must still appear in the trace (a proof shows *all* its steps).
  const LoopVerdict v = analyze_with("for (i = 0; i < n; i++) a[i] = b[i];");
  EXPECT_TRUE(v.parallelizable);
  ASSERT_FALSE(v.pair_provenance.empty());
  for (const PairProvenance& p : v.pair_provenance) {
    EXPECT_FALSE(p.test.empty());
    EXPECT_FALSE(p.carried) << provenance_text(p);
  }
}

TEST(Provenance, GemmNamesTextPinnedAndBanerjeeDecisions) {
  const auto verdicts = analyze_fixture("gemm.c");
  ASSERT_EQ(verdicts.size(), 4u);
  // Outer i loop: the linearized C[i*nj + j] pairs have identical complex
  // subscript text, so the text-pinned rule decides them — same element,
  // same iteration only, hence still parallelizable.
  bool pinned = false;
  for (const PairProvenance& p : verdicts[0].pair_provenance) {
    if (p.array != "C" || p.test != "text-pinned") continue;
    pinned = true;
    EXPECT_FALSE(p.carried) << provenance_text(p);
    EXPECT_TRUE(p.possible);
  }
  EXPECT_TRUE(pinned);
  // The k loop re-writes the same element every iteration: Banerjee proves
  // the write-write collision carried at the k level.
  bool carried = false;
  for (const PairProvenance& p : verdicts[2].pair_provenance) {
    if (p.array != "C" || !p.carried) continue;
    carried = true;
    EXPECT_EQ(p.test, "banerjee") << provenance_text(p);
  }
  EXPECT_TRUE(carried);
}

TEST(Provenance, EveryRealworldPairNamesItsDecidingTest) {
  const char* fixtures[] = {"gemm.c",   "atax.c",      "mvt.c",
                            "gemver.c", "jacobi-1d.c", "non_parallel.c"};
  std::size_t pairs_seen = 0;
  for (const char* name : fixtures) {
    for (const LoopVerdict& v : analyze_fixture(name)) {
      EXPECT_EQ(v.pair_provenance.size(), v.dep_pairs_tested) << name;
      for (const PairProvenance& p : v.pair_provenance) {
        ++pairs_seen;
        EXPECT_FALSE(p.test.empty()) << name;
        EXPECT_FALSE(p.src_text.empty()) << name;
        EXPECT_FALSE(provenance_text(p).empty()) << name;
      }
    }
  }
  EXPECT_GT(pairs_seen, 0u);
}

TEST(Realworld, V2StrictlyFewerUnknownsThanSeedEngine) {
  const char* fixtures[] = {"gemm.c",      "atax.c", "mvt.c",
                            "gemver.c",    "jacobi-1d.c", "non_parallel.c"};
  std::size_t seed_unknown = 0, v2_unknown = 0;
  std::size_t seed_bailed = 0, v2_bailed = 0;
  AnalyzerOptions legacy;
  legacy.exact_dependence_engine = false;
  for (const char* name : fixtures) {
    for (const LoopVerdict& v : analyze_fixture(name, legacy)) {
      seed_unknown += v.dep_pairs_unknown;
      seed_bailed += v.bailed ? 1 : 0;
    }
    for (const LoopVerdict& v : analyze_fixture(name)) {
      v2_unknown += v.dep_pairs_unknown;
      v2_bailed += v.bailed ? 1 : 0;
    }
  }
  EXPECT_EQ(v2_unknown, 0u);
  EXPECT_LT(v2_unknown, seed_unknown);
  EXPECT_LE(v2_bailed, seed_bailed);
}

}  // namespace
}  // namespace clpp::analysis
