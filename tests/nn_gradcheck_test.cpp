// Finite-difference gradient checks for every differentiable module.
//
// Each check perturbs a sample of parameter entries (and input entries) by
// ±h, recomputes a scalar loss, and compares the numeric derivative with
// the analytic gradient produced by backward(). All checks run in
// deterministic eval mode (no dropout) so central differences are exact up
// to float noise.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/transformer.h"

namespace clpp::nn {
namespace {

/// Scalar loss used to exercise backward paths: weighted sum of outputs.
/// Fixed weights make dL/dy analytic and nontrivial.
struct WeightedSumLoss {
  Tensor weights;

  explicit WeightedSumLoss(const std::vector<std::size_t>& shape, Rng& rng)
      : weights(Tensor::randn(shape, rng)) {}

  float value(const Tensor& y) const {
    float acc = 0;
    for (std::size_t i = 0; i < y.numel(); ++i) acc += y(i) * weights(i);
    return acc;
  }

  Tensor grad() const { return weights; }
};

/// Relative error with a floor on the denominator: gradients whose true
/// value is (near) zero — e.g. the key-projection bias, which provably has
/// zero gradient because softmax is shift-invariant — show pure float noise
/// (~1e-5) in the central difference, so differences below the floor are
/// treated as agreement.
double rel_err(double got, double want) {
  return std::abs(got - want) / std::max({std::abs(got), std::abs(want), 5e-3});
}

/// Checks d(loss)/d(entry) for a sample of entries of `target` against the
/// analytic gradient in `analytic`, where `loss_fn` recomputes the loss
/// after mutations of target.
void check_entries(Tensor& target, const Tensor& analytic,
                   const std::function<float()>& loss_fn, std::size_t samples,
                   Rng& rng, double tolerance, const std::string& what,
                   float h = 1e-2f) {
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t i = rng.index(target.numel());
    const float saved = target(i);
    target(i) = saved + h;
    const double up = loss_fn();
    target(i) = saved - h;
    const double down = loss_fn();
    target(i) = saved;
    const double numeric = (up - down) / (2.0 * h);
    const double got = analytic(i);
    EXPECT_LT(rel_err(got, numeric), tolerance)
        << what << " entry " << i << ": analytic " << got << " vs numeric " << numeric;
  }
}

std::vector<Parameter*> params_of(Linear& l) {
  std::vector<Parameter*> p;
  l.collect_parameters(p);
  return p;
}

TEST(GradCheck, LinearWeightsBiasInput) {
  Rng rng(101);
  Linear layer("fc", 5, 4, rng);
  Tensor x = Tensor::randn({6, 5}, rng);
  WeightedSumLoss loss({6, 4}, rng);
  auto run = [&] { return loss.value(layer.forward(x, false)); };

  run();
  for (Parameter* p : params_of(layer)) p->grad.zero();
  const Tensor dx = layer.backward(loss.grad());

  check_entries(layer.weight.value, layer.weight.grad, run, 10, rng, 2e-2, "W");
  check_entries(layer.bias.value, layer.bias.grad, run, 4, rng, 2e-2, "b");
  check_entries(x, dx, run, 10, rng, 2e-2, "x");
}

TEST(GradCheck, LayerNorm) {
  Rng rng(102);
  LayerNorm layer("ln", 6);
  // Non-trivial gamma/beta so their gradients are exercised.
  for (std::size_t i = 0; i < 6; ++i) {
    layer.gamma.value(i) = 0.5f + 0.2f * static_cast<float>(i);
    layer.beta.value(i) = 0.1f * static_cast<float>(i);
  }
  Tensor x = Tensor::randn({4, 6}, rng);
  WeightedSumLoss loss({4, 6}, rng);
  auto run = [&] { return loss.value(layer.forward(x, false)); };

  run();
  layer.gamma.grad.zero();
  layer.beta.grad.zero();
  const Tensor dx = layer.backward(loss.grad());

  check_entries(layer.gamma.value, layer.gamma.grad, run, 6, rng, 2e-2, "gamma");
  check_entries(layer.beta.value, layer.beta.grad, run, 6, rng, 2e-2, "beta");
  check_entries(x, dx, run, 12, rng, 2e-2, "x");
}

TEST(GradCheck, GeluInput) {
  Rng rng(103);
  Gelu layer;
  Tensor x = Tensor::randn({3, 5}, rng);
  WeightedSumLoss loss({3, 5}, rng);
  auto run = [&] { return loss.value(layer.forward(x, false)); };
  run();
  const Tensor dx = layer.backward(loss.grad());
  check_entries(x, dx, run, 12, rng, 2e-2, "x");
}

TEST(GradCheck, ReluInput) {
  Rng rng(104);
  ReLU layer;
  // Keep entries away from the kink at 0 where central differences lie.
  Tensor x = Tensor::randn({3, 5}, rng);
  for (float& v : x.values())
    if (std::abs(v) < 0.1f) v = 0.5f;
  WeightedSumLoss loss({3, 5}, rng);
  auto run = [&] { return loss.value(layer.forward(x, false)); };
  run();
  const Tensor dx = layer.backward(loss.grad());
  check_entries(x, dx, run, 12, rng, 2e-2, "x");
}

TEST(GradCheck, AttentionInputAndProjections) {
  Rng rng(105);
  const std::size_t B = 2, S = 5, D = 8;
  MultiHeadSelfAttention attn("attn", D, 2, rng);
  Tensor x = Tensor::randn({B * S, D}, rng);
  const std::vector<int> lengths = {5, 3};
  WeightedSumLoss loss({B * S, D}, rng);
  // Zero the loss weight on padded rows: their forward values are
  // don't-care by contract, so the loss must not read them.
  for (std::size_t s = 3; s < S; ++s)
    for (std::size_t j = 0; j < D; ++j) loss.weights((S + s) * D + j) = 0.0f;

  auto run = [&] { return loss.value(attn.forward(x, B, S, lengths, false)); };
  run();
  std::vector<Parameter*> params;
  attn.collect_parameters(params);
  zero_gradients(params);
  const Tensor dx = attn.backward(loss.grad());

  check_entries(x, dx, run, 16, rng, 3e-2, "x");
  for (Parameter* p : params)
    check_entries(p->value, p->grad, run, 6, rng, 3e-2, p->name);
}

TEST(GradCheck, EncoderLayerEndToEnd) {
  Rng rng(106);
  EncoderConfig cfg;
  cfg.vocab_size = 11;  // unused by the block itself but validated
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn_dim = 12;
  cfg.dropout = 0.0f;
  TransformerEncoderLayer block("blk", cfg, rng);
  const std::size_t B = 2, S = 4;
  Tensor x = Tensor::randn({B * S, cfg.dim}, rng);
  const std::vector<int> lengths = {4, 2};
  WeightedSumLoss loss({B * S, cfg.dim}, rng);
  for (std::size_t s = 2; s < S; ++s)
    for (std::size_t j = 0; j < cfg.dim; ++j) loss.weights((S + s) * cfg.dim + j) = 0.0f;

  auto run = [&] { return loss.value(block.forward(x, B, S, lengths, false)); };
  run();
  std::vector<Parameter*> params;
  block.collect_parameters(params);
  zero_gradients(params);
  const Tensor dx = block.backward(loss.grad());

  check_entries(x, dx, run, 16, rng, 3e-2, "x");
  for (Parameter* p : params)
    check_entries(p->value, p->grad, run, 4, rng, 4e-2, p->name);
}

TEST(GradCheck, FullEncoderWithCrossEntropy) {
  Rng rng(107);
  EncoderConfig cfg;
  cfg.vocab_size = 13;
  cfg.max_seq = 6;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 2;
  cfg.ffn_dim = 12;
  cfg.dropout = 0.0f;
  TransformerEncoder encoder(cfg, rng);
  Linear head("head", cfg.dim, 2, rng);

  TokenBatch batch;
  batch.batch = 2;
  batch.seq = 5;
  batch.ids = {1, 4, 7, 9, 2, 1, 5, 8, 0, 0};
  batch.lengths = {5, 3};
  const std::vector<std::int32_t> labels = {1, 0};

  SoftmaxCrossEntropy loss;
  auto run = [&] {
    Tensor hidden = encoder.forward(batch, false);
    Tensor pooled = pooled_cls(hidden, batch.batch, batch.seq);
    Tensor logits = head.forward(pooled, false);
    return loss.forward(logits, labels);
  };
  run();
  std::vector<Parameter*> params;
  encoder.collect_parameters(params);
  head.collect_parameters(params);
  zero_gradients(params);
  Tensor g = loss.backward();
  g = head.backward(g);
  g = scatter_cls_grad(g, batch.batch, batch.seq);
  encoder.backward(g);

  // Check a sample of entries in every parameter, embeddings included.
  // Deep stacks have noticeable curvature (verified: numeric estimates
  // converge to the analytic value as h -> 0), so use a smaller step.
  for (Parameter* p : params)
    check_entries(p->value, p->grad, run, 3, rng, 5e-2, p->name, 3e-3f);
}

TEST(GradCheck, CrossEntropyGradientMatchesFormula) {
  Rng rng(108);
  Tensor logits = Tensor::randn({3, 2}, rng);
  const std::vector<std::int32_t> labels = {1, 0, SoftmaxCrossEntropy::kIgnore};
  SoftmaxCrossEntropy loss;
  loss.forward(logits, labels);
  const Tensor grad = loss.backward();
  // Ignored row contributes no gradient.
  EXPECT_EQ(grad(2, 0), 0.0f);
  EXPECT_EQ(grad(2, 1), 0.0f);
  // Active rows: (p - onehot)/2.
  const Tensor& probs = loss.probabilities();
  EXPECT_NEAR(grad(0, 1), (probs(0, 1) - 1.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(grad(1, 0), (probs(1, 0) - 1.0f) / 2.0f, 1e-6f);
}

}  // namespace
}  // namespace clpp::nn
