// Robustness fuzzing for the frontend: arbitrary input must either parse
// or raise ParseError — never crash, hang, or corrupt memory. The S2S
// robustness story (and ComPar's compile-failure accounting) depends on
// this failure mode being an exception, not UB.
#include <gtest/gtest.h>

#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "frontend/pragma.h"
#include "frontend/printer.h"
#include "support/rng.h"

namespace clpp::frontend {
namespace {

/// Random printable garbage, biased toward C-looking characters.
std::string random_garbage(Rng& rng, std::size_t length) {
  static constexpr char kChars[] =
      "abcxyz0189 ()[]{};,+-*/%=<>!&|^~?:.#\"'\\\n\t_";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i)
    out.push_back(kChars[rng.index(sizeof(kChars) - 1)]);
  return out;
}

/// Random sequence of valid C tokens (syntactically shuffled C).
std::string random_token_soup(Rng& rng, std::size_t tokens) {
  static constexpr const char* kTokens[] = {
      "for",  "while", "if",    "else", "int",  "double", "return", "break",
      "i",    "j",     "a",     "b",    "n",    "0",      "1",      "2.5",
      "(",    ")",     "[",     "]",    "{",    "}",      ";",      ",",
      "=",    "+",     "-",     "*",    "/",    "<",      ">",      "<=",
      "++",   "--",    "+=",    "==",   "&&",   "->",     "\"s\"",  "'c'",
      "sizeof", "struct", "goto", "continue", "do"};
  std::string out;
  for (std::size_t i = 0; i < tokens; ++i) {
    out += kTokens[rng.index(std::size(kTokens))];
    out += ' ';
  }
  return out;
}

TEST(FrontendFuzz, LexerNeverCrashesOnGarbage) {
  Rng rng(0xF022);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string input = random_garbage(rng, rng.index(200));
    try {
      const auto tokens = lex(input);
      EXPECT_FALSE(tokens.empty());  // at least the EOF token
      EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
    } catch (const ParseError&) {
      // Acceptable outcome.
    }
  }
}

TEST(FrontendFuzz, ParserNeverCrashesOnGarbage) {
  Rng rng(0xF023);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string input = random_garbage(rng, rng.index(160));
    try {
      const NodePtr unit = parse_snippet(input);
      EXPECT_NE(unit, nullptr);
    } catch (const ParseError&) {
      // Acceptable outcome.
    }
  }
}

TEST(FrontendFuzz, ParserNeverCrashesOnTokenSoup) {
  Rng rng(0xF024);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string input = random_token_soup(rng, 1 + rng.index(60));
    try {
      const NodePtr unit = parse_snippet(input);
      // Whatever parsed must print back without crashing either.
      const std::string printed = print_source(*unit);
      EXPECT_FALSE(printed.empty() && !unit->children.empty());
    } catch (const ParseError&) {
      // Acceptable outcome.
    }
  }
}

TEST(FrontendFuzz, DeeplyNestedExpressionsAreBounded) {
  // Pathological nesting must not smash the stack at realistic depths.
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "(";
  deep += "x";
  for (int i = 0; i < 200; ++i) deep += ")";
  deep += ";";
  EXPECT_NO_THROW(parse_snippet(deep));

  std::string unbalanced(300, '(');
  EXPECT_THROW(parse_snippet(unbalanced + "x;"), ParseError);
}

TEST(FrontendFuzz, LongFlatProgramsParse) {
  std::string program;
  for (int i = 0; i < 2000; ++i) program += "x = x + 1;\n";
  const NodePtr unit = parse_snippet(program);
  EXPECT_EQ(unit->children.size(), 2000u);
}

TEST(FrontendFuzz, PragmaParserNeverCrashesOnGarbage) {
  Rng rng(0xF025);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string clause_soup = "pragma omp " + random_garbage(rng, rng.index(80));
    try {
      const OmpDirective d = parse_omp_pragma(clause_soup);
      (void)d.to_string();  // rendering must be safe too
    } catch (const ParseError&) {
      // Acceptable outcome.
    }
  }
}

}  // namespace
}  // namespace clpp::frontend
