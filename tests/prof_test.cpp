// clpp::prof — counter groups (software fallback and auto mode), scoped
// counter metrics, collapsed-stack aggregation, the sampling profiler,
// FLOP/byte kernel accounting, and profdiff regression gating.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "nn/attention.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "prof/counters.h"
#include "prof/flops.h"
#include "prof/prof.h"
#include "prof/profdiff.h"
#include "prof/sampler.h"
#include "support/error.h"
#include "support/json.h"
#include "support/rng.h"
#include "tensor/ops.h"

namespace {

using namespace clpp;

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    prof::set_enabled(true);
    prof::set_counter_mode(prof::CounterMode::kSoftware);
    obs::metrics().reset();
  }
  void TearDown() override {
    prof::set_counter_mode(prof::CounterMode::kAuto);
    prof::set_enabled(false);
    obs::set_enabled(false);
  }

  /// Burns thread CPU time until both wall and cpu clocks visibly advance.
  static void burn_cpu() {
    const auto t0 = std::chrono::steady_clock::now();
    volatile double sink = 0.0;
    while (std::chrono::steady_clock::now() - t0 < std::chrono::milliseconds(2))
      sink = sink + std::sqrt(2.0);
  }
};

TEST_F(ProfTest, SoftwareFallbackCounterRead) {
  prof::CounterGroup& group = prof::CounterGroup::this_thread();
  EXPECT_FALSE(group.hardware());  // mode forced to kSoftware in SetUp
  const prof::CounterSample begin = group.read();
  burn_cpu();
  const prof::CounterSample d = group.read().delta_since(begin);
  EXPECT_FALSE(d.hardware);
  EXPECT_GT(d.wall_ns, 0u);
  EXPECT_GT(d.cpu_ns, 0u);
  EXPECT_GT(d.cpu_utilization(), 0.0);
  EXPECT_LE(d.cpu_utilization(), 1.0);
  EXPECT_EQ(d.ipc(), 0.0);  // hardware family unavailable
}

TEST_F(ProfTest, AutoModeNeverThrows) {
  // In containers perf_event_open may be blocked; auto must degrade, not die.
  prof::set_counter_mode(prof::CounterMode::kAuto);
  prof::CounterGroup& group = prof::CounterGroup::this_thread();
  const prof::CounterSample begin = group.read();
  burn_cpu();
  const prof::CounterSample d = group.read().delta_since(begin);
  EXPECT_GT(d.wall_ns, 0u);
  if (group.hardware()) {
    EXPECT_TRUE(d.hardware);
    EXPECT_GT(d.cycles, 0u);
  }
}

TEST_F(ProfTest, ScopedCountersRecordMetrics) {
  prof::CounterSet& set = prof::counter_set("prof_test.scope");
  {
    prof::ScopedCounters scope(set);
    EXPECT_TRUE(scope.active());
    burn_cpu();
  }
  EXPECT_EQ(set.samples.value(), 1u);
  EXPECT_GT(set.wall_ns.value(), 0u);
  EXPECT_GT(set.cpu_ns.value(), 0u);
  EXPECT_EQ(set.hw_samples.value(), 0u);  // software mode
}

TEST_F(ProfTest, ScopedCountersInactiveWhenModeOff) {
  prof::set_counter_mode(prof::CounterMode::kOff);
  prof::CounterSet& set = prof::counter_set("prof_test.off");
  {
    prof::ScopedCounters scope(set);
    EXPECT_FALSE(scope.active());
    burn_cpu();
  }
  EXPECT_EQ(set.samples.value(), 0u);
}

TEST_F(ProfTest, StackCollapserRoundTrip) {
  prof::StackCollapser collapser;
  collapser.add({"main", "train", "gemm"}, 3);
  collapser.add({"main", "train", "gemm"}, 2);
  collapser.add({"main", "infer"});
  collapser.add({"weird;name"});  // ';' is the separator; must be sanitized
  EXPECT_EQ(collapser.total(), 7u);

  const std::string text = collapser.str();
  const auto parsed = prof::StackCollapser::parse(text);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed.at("main;train;gemm"), 5u);
  EXPECT_EQ(parsed.at("main;infer"), 1u);
  EXPECT_EQ(parsed.at("weird:name"), 1u);

  EXPECT_THROW(prof::StackCollapser::parse("no trailing count\n"),
               InvalidArgument);
}

TEST_F(ProfTest, SamplerCapturesBusyLoop) {
  prof::Sampler& sampler = prof::Sampler::instance();
  ASSERT_FALSE(sampler.running());
  sampler.reset();
  if (!sampler.start(997)) GTEST_SKIP() << "no backtrace support";
  // ~40ms of CPU at 997 Hz ≈ 40 expected samples.
  const auto t0 = std::chrono::steady_clock::now();
  volatile double sink = 0.0;
  while (std::chrono::steady_clock::now() - t0 < std::chrono::milliseconds(40))
    sink = sink + std::sqrt(2.0);
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  if (sampler.samples() == 0)
    GTEST_SKIP() << "ITIMER_PROF delivered no signals here";
  const std::string collapsed = sampler.collapsed();
  EXPECT_FALSE(collapsed.empty());
  // Every line must survive a round-trip through the parser. Stacks too
  // shallow to be attributable are skipped, so total ≤ captured samples.
  const auto parsed = prof::StackCollapser::parse(collapsed);
  std::uint64_t total = 0;
  for (const auto& [stack, count] : parsed) total += count;
  EXPECT_GT(total, 0u);
  EXPECT_LE(total, sampler.samples());

  const std::string path = "prof_test_flame.folded";
  sampler.write_collapsed(path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  in.close();
  std::remove(path.c_str());
  sampler.reset();
}

TEST_F(ProfTest, GemmFlopAccounting) {
  constexpr std::size_t m = 64, k = 32, n = 16;
  prof::KernelCounters& kc = prof::kernel_counters("gemm");
  const std::uint64_t flops0 = kc.flops.value();
  const std::uint64_t calls0 = kc.calls.value();

  Rng rng(7);
  Tensor a({m, k}), b({k, n});
  for (float& v : a.values()) v = rng.normal();
  for (float& v : b.values()) v = rng.normal();
  const Tensor c = matmul(a, b);
  ASSERT_EQ(c.rows(), m);

  EXPECT_EQ(kc.calls.value(), calls0 + 1);
  EXPECT_EQ(kc.flops.value() - flops0, 2ull * m * n * k);
  EXPECT_GT(kc.wall_ns.value(), 0u);
  EXPECT_GT(kc.gflops.value(), 0.0);
  const double expected_intensity =
      static_cast<double>(2ull * m * n * k) /
      static_cast<double>(sizeof(float) * (m * k + k * n + 2 * m * n));
  EXPECT_DOUBLE_EQ(kc.arith_intensity.value(), expected_intensity);
}

TEST_F(ProfTest, AttentionKernelAccounting) {
  constexpr std::size_t batch = 2, seq = 8, dim = 16, heads = 4;
  Rng rng(11);
  nn::MultiHeadSelfAttention attn("t.attn", dim, heads, rng);
  Tensor x({batch * seq, dim});
  for (float& v : x.values()) v = rng.normal(0.0f, 0.1f);
  const std::vector<int> lengths = {8, 5};

  prof::KernelCounters& kc = prof::kernel_counters("attention");
  const std::uint64_t calls0 = kc.calls.value();
  const Tensor out = attn.forward(x, batch, seq, lengths, /*train=*/false);
  ASSERT_EQ(out.rows(), batch * seq);
  EXPECT_EQ(kc.calls.value(), calls0 + 1);
  // flops = H · S · Σlen · (4·dh + 5) with dh = dim/heads = 4.
  EXPECT_GT(kc.flops.value(), 0u);
  EXPECT_EQ(kc.flops.value(),
            static_cast<std::uint64_t>(heads) * seq * (8 + 5) *
                (4ull * (dim / heads) + 5ull));
}

class ProfdiffTest : public ::testing::Test {
 protected:
  void SetUp() override { std::filesystem::create_directories(dir_); }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes a google-benchmark style report with one timing row.
  void write_bench(const std::string& name, double real_ns, double cpu_ns) {
    Json row = Json::object();
    row["name"] = "BM_Gemm/64";
    row["run_type"] = "iteration";
    row["real_time"] = real_ns;
    row["cpu_time"] = cpu_ns;
    row["time_unit"] = "ns";
    Json rows = Json::array();
    rows.push_back(std::move(row));
    Json doc = Json::object();
    doc["benchmarks"] = std::move(rows);
    std::ofstream out(dir_ + "/" + name);
    out << doc.dump();
  }

  const std::string dir_ = "prof_test_artifacts";
};

TEST_F(ProfdiffTest, IdenticalRunsHaveNoRegressions) {
  write_bench("BENCH_micro.json", 1000.0, 900.0);
  const auto series = prof::flatten_series(prof::scan_artifacts(dir_));
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series.at("micro:bench:BM_Gemm/64:real_time_ns"), 1000.0);

  const prof::DiffReport report = prof::diff_series(series, series, 0.2);
  EXPECT_EQ(report.regressions(), 0u);
  EXPECT_EQ(report.only_base, 0u);
  EXPECT_EQ(report.only_current, 0u);
}

TEST_F(ProfdiffTest, InjectedRegressionIsFlagged) {
  write_bench("BENCH_micro.json", 1000.0, 900.0);
  const auto base = prof::flatten_series(prof::scan_artifacts(dir_));
  write_bench("BENCH_micro.json", 2000.0, 1800.0);  // 2x slower
  const auto current = prof::flatten_series(prof::scan_artifacts(dir_));

  const prof::DiffReport report = prof::diff_series(base, current, 0.2);
  EXPECT_EQ(report.regressions(), 2u);  // real and cpu time both doubled
  const std::string rendered = prof::render_diff(report);
  EXPECT_NE(rendered.find("micro:bench:BM_Gemm/64:real_time_ns"),
            std::string::npos);
  EXPECT_NE(rendered.find("REGRESSED"), std::string::npos);

  const Json doc = prof::diff_to_json(report);
  EXPECT_EQ(doc.at("regressions").as_int(), 2);
}

TEST_F(ProfdiffTest, UntrackedSeriesNeverRegress) {
  std::map<std::string, double> base{{"micro:counter:clpp.train.epochs", 8.0}};
  std::map<std::string, double> current{{"micro:counter:clpp.train.epochs", 80.0}};
  const prof::DiffReport report = prof::diff_series(base, current, 0.2);
  EXPECT_EQ(report.regressions(), 0u);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_FALSE(report.rows[0].tracked);
}

TEST_F(ProfdiffTest, LatencyHistogramTailsAreTracked) {
  // A regression that only fattens the tail must gate: p95/p99 are tracked
  // series alongside the mean, while count/p50/max stay informational.
  const std::string hist = "serve:hist:clpp.serve.latency_us";
  EXPECT_TRUE(prof::series_is_tracked(hist + ":mean"));
  EXPECT_TRUE(prof::series_is_tracked(hist + ":p95"));
  EXPECT_TRUE(prof::series_is_tracked(hist + ":p99"));
  EXPECT_FALSE(prof::series_is_tracked(hist + ":count"));
  EXPECT_FALSE(prof::series_is_tracked(hist + ":p50"));
  EXPECT_FALSE(prof::series_is_tracked(hist + ":max"));
  // Non-latency histograms never gate, whatever the stat.
  EXPECT_FALSE(prof::series_is_tracked("serve:hist:clpp.serve.batch_rows:p99"));

  std::map<std::string, double> base{{hist + ":p99", 100.0},
                                     {hist + ":mean", 50.0}};
  std::map<std::string, double> current{{hist + ":p99", 300.0},  // 3x tail
                                        {hist + ":mean", 51.0}};
  const prof::DiffReport report = prof::diff_series(base, current, 0.2);
  EXPECT_EQ(report.regressions(), 1u);  // the tail alone trips the gate
}

TEST_F(ProfdiffTest, SummaryWriteAndRescan) {
  write_bench("BENCH_micro.json", 1000.0, 900.0);
  const std::string path = prof::write_summary(dir_);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const Json doc = Json::parse(buf.str());
  EXPECT_EQ(doc.at("schema").as_string(), "clpp.bench_summary.v1");
  EXPECT_TRUE(doc.at("benches").contains("micro"));

  // The summary is derived: a rescan must ignore it, not double count.
  const auto series = prof::flatten_series(prof::scan_artifacts(dir_));
  EXPECT_EQ(series.size(), 2u);
}

TEST_F(ProfdiffTest, ScanRejectsMissingDirectory) {
  EXPECT_THROW(prof::scan_artifacts("prof_test_no_such_dir"), IoError);
}

}  // namespace
