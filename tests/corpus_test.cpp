// Tests for corpus records, statistics, persistence, and splits.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "corpus/corpus.h"

namespace clpp::corpus {
namespace {

Record make_record(const std::string& id, bool directive, const std::string& text = {}) {
  Record r;
  r.id = id;
  r.family = "test";
  r.code = "for (i = 0; i < n; i++) a[i] = i;";
  r.has_directive = directive;
  r.directive_text =
      directive ? (text.empty() ? "#pragma omp parallel for" : text) : "";
  r.refresh_labels();
  return r;
}

TEST(Record, LabelsDeriveFromDirective) {
  const Record r = make_record(
      "r1", true, "#pragma omp parallel for private(j) reduction(+: sum) schedule(dynamic)");
  EXPECT_TRUE(r.label_private);
  EXPECT_TRUE(r.label_reduction);
  EXPECT_EQ(r.schedule, frontend::ScheduleKind::kDynamic);
}

TEST(Record, UnspecifiedScheduleCountsAsStatic) {
  const Record r = make_record("r1", true);
  EXPECT_EQ(r.schedule, frontend::ScheduleKind::kStatic);
  EXPECT_FALSE(r.label_private);
}

TEST(Record, NegativeHasNoLabels) {
  const Record r = make_record("r1", false);
  EXPECT_FALSE(r.label_private);
  EXPECT_FALSE(r.label_reduction);
  EXPECT_EQ(r.schedule, frontend::ScheduleKind::kNone);
  EXPECT_THROW(r.directive(), InvalidArgument);
}

TEST(Record, JsonRoundTrip) {
  const Record r = make_record(
      "r42", true, "#pragma omp parallel for schedule(dynamic, 4) private(t)");
  const Record back = Record::from_json(Json::parse(r.to_json().dump()));
  EXPECT_EQ(back, r);
}

TEST(Record, SeededBugTagRoundTrips) {
  Record r = make_record("r7", true, "#pragma omp parallel for");
  r.bug = "missing-reduction";
  const Record back = Record::from_json(Json::parse(r.to_json().dump()));
  EXPECT_EQ(back.bug, "missing-reduction");
  EXPECT_EQ(back, r);

  // Clean records keep their serialization free of the field.
  const Record clean = make_record("r8", true, "#pragma omp parallel for");
  EXPECT_FALSE(clean.to_json().contains("bug"));
}

TEST(CorpusContainer, StatsMatchTable3Semantics) {
  Corpus corpus;
  corpus.add(make_record("1", true, "#pragma omp parallel for"));
  corpus.add(make_record("2", true, "#pragma omp parallel for schedule(dynamic)"));
  corpus.add(make_record(
      "3", true, "#pragma omp parallel for private(j) reduction(+: s)"));
  corpus.add(make_record("4", false));
  const CorpusStats s = corpus.stats();
  EXPECT_EQ(s.total, 4u);
  EXPECT_EQ(s.with_directive, 3u);
  EXPECT_EQ(s.without_directive, 1u);
  EXPECT_EQ(s.schedule_static, 2u);
  EXPECT_EQ(s.schedule_dynamic, 1u);
  EXPECT_EQ(s.reduction, 1u);
  EXPECT_EQ(s.private_clause, 1u);
  // Table 3 invariant: every directive is counted static or dynamic.
  EXPECT_EQ(s.schedule_static + s.schedule_dynamic, s.with_directive);
}

TEST(CorpusContainer, JsonlRoundTrip) {
  Corpus corpus;
  for (int i = 0; i < 10; ++i)
    corpus.add(make_record("rec" + std::to_string(i), i % 2 == 0));
  const std::string path =
      (std::filesystem::temp_directory_path() / "clpp_corpus_test.jsonl").string();
  corpus.save_jsonl(path);
  const Corpus loaded = Corpus::load_jsonl(path);
  ASSERT_EQ(loaded.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i)
    EXPECT_EQ(loaded.at(i), corpus.at(i));
  std::remove(path.c_str());
}

TEST(CorpusContainer, LoadRejectsMalformedLine) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "clpp_bad_corpus.jsonl").string();
  {
    std::ofstream out(path);
    out << "{\"id\": \"x\", \"code\": \"y\"}\n{broken\n";
  }
  EXPECT_THROW(Corpus::load_jsonl(path), ParseError);
  std::remove(path.c_str());
}

class SplitRatios : public ::testing::TestWithParam<Task> {};

TEST_P(SplitRatios, HoldsRatiosAndPartitions) {
  Corpus corpus;
  Rng seed_rng(1);
  for (int i = 0; i < 2000; ++i) {
    const bool pos = seed_rng.chance(0.46);
    std::string directive = "#pragma omp parallel for";
    if (pos && seed_rng.chance(0.45)) directive += " private(j)";
    if (pos && seed_rng.chance(0.3)) directive += " reduction(+: s)";
    corpus.add(make_record("r" + std::to_string(i), pos, directive));
  }
  Rng rng(7);
  const Task task = GetParam();
  const Split split = make_split(corpus, task, rng);
  const auto population = task_population(corpus, task);
  EXPECT_EQ(split.total(), population.size());

  // Ratio check: 75 / 12.5 / 12.5 within integer-rounding slack.
  EXPECT_NEAR(static_cast<double>(split.train.size()) / split.total(), 0.75, 0.01);
  EXPECT_NEAR(static_cast<double>(split.validation.size()) / split.total(), 0.125,
              0.01);

  // Partition check: no index appears twice.
  std::set<std::size_t> seen;
  for (const auto* part : {&split.train, &split.validation, &split.test})
    for (std::size_t i : *part) EXPECT_TRUE(seen.insert(i).second);

  // Stratification check: label balance preserved in each side.
  auto positive_rate = [&](const std::vector<std::size_t>& part) {
    std::size_t pos = 0;
    for (std::size_t i : part) pos += label_of(corpus.at(i), task);
    return static_cast<double>(pos) / part.size();
  };
  const double overall = positive_rate(split.train);
  EXPECT_NEAR(positive_rate(split.validation), overall, 0.05);
  EXPECT_NEAR(positive_rate(split.test), overall, 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllTasks, SplitRatios,
                         ::testing::Values(Task::kDirective, Task::kPrivate,
                                           Task::kReduction));

TEST(SplitDeterminism, SameSeedSameSplit) {
  Corpus corpus;
  for (int i = 0; i < 100; ++i)
    corpus.add(make_record("r" + std::to_string(i), i % 2 == 0));
  Rng a(5), b(5);
  const Split sa = make_split(corpus, Task::kDirective, a);
  const Split sb = make_split(corpus, Task::kDirective, b);
  EXPECT_EQ(sa.train, sb.train);
  EXPECT_EQ(sa.test, sb.test);
}

TEST(TaskHelpers, PopulationAndLabels) {
  Corpus corpus;
  corpus.add(make_record("p", true, "#pragma omp parallel for private(t)"));
  corpus.add(make_record("n", false));
  EXPECT_EQ(task_population(corpus, Task::kDirective).size(), 2u);
  EXPECT_EQ(task_population(corpus, Task::kPrivate).size(), 1u);
  EXPECT_EQ(label_of(corpus.at(0), Task::kPrivate), 1);
  EXPECT_EQ(label_of(corpus.at(0), Task::kReduction), 0);
  EXPECT_EQ(task_name(Task::kReduction), "reduction");
}

}  // namespace
}  // namespace clpp::corpus
