// Behavioural unit tests for NN layers, optimizer, checkpointing, and MLM
// masking (gradient correctness is covered by nn_gradcheck_test).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/checkpoint.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/mlm.h"
#include "nn/optimizer.h"
#include "nn/transformer.h"
#include "tensor/ops.h"

namespace clpp::nn {
namespace {

TEST(Linear, OutputShapeAndBias) {
  Rng rng(1);
  Linear layer("fc", 3, 2, rng);
  layer.weight.value.zero();
  layer.bias.value(0) = 5.0f;
  layer.bias.value(1) = -1.0f;
  const Tensor y = layer.forward(Tensor({4, 3}), false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{4, 2}));
  EXPECT_FLOAT_EQ(y(2, 0), 5.0f);
  EXPECT_FLOAT_EQ(y(2, 1), -1.0f);
}

TEST(Linear, RejectsWrongInputWidth) {
  Rng rng(2);
  Linear layer("fc", 3, 2, rng);
  EXPECT_THROW(layer.forward(Tensor({4, 5}), false), InvalidArgument);
}

TEST(Linear, BackwardBeforeForwardThrows) {
  Rng rng(3);
  Linear layer("fc", 3, 2, rng);
  EXPECT_THROW(layer.backward(Tensor({4, 2})), InvalidArgument);
}

TEST(LayerNorm, NormalizesRows) {
  Rng rng(4);
  LayerNorm ln("ln", 8);
  const Tensor x = Tensor::randn({5, 8}, rng, 3.0f, 2.0f);
  const Tensor y = ln.forward(x, false);
  for (std::size_t i = 0; i < 5; ++i) {
    float mean = 0, var = 0;
    for (std::size_t j = 0; j < 8; ++j) mean += y(i, j);
    mean /= 8;
    for (std::size_t j = 0; j < 8; ++j) var += (y(i, j) - mean) * (y(i, j) - mean);
    var /= 8;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(Dropout, IdentityInEval) {
  Rng rng(5);
  Dropout drop(0.5f, rng);
  const Tensor x = Tensor::randn({10, 10}, rng);
  EXPECT_TRUE(drop.forward(x, false).allclose(x, 0.0f));
}

TEST(Dropout, PreservesExpectationInTrain) {
  Rng rng(6);
  Dropout drop(0.3f, rng);
  const Tensor x = Tensor::full({100, 100}, 1.0f);
  const Tensor y = drop.forward(x, true);
  EXPECT_NEAR(y.mean(), 1.0f, 0.03f);
  // Survivors are scaled by 1/(1-p).
  for (float v : y.values()) EXPECT_TRUE(v == 0.0f || std::abs(v - 1.0f / 0.7f) < 1e-5f);
}

TEST(Dropout, MaskAppliedToBackward) {
  Rng rng(7);
  Dropout drop(0.5f, rng);
  const Tensor x = Tensor::full({20, 20}, 1.0f);
  const Tensor y = drop.forward(x, true);
  const Tensor g = drop.backward(Tensor::full({20, 20}, 1.0f));
  for (std::size_t i = 0; i < y.numel(); ++i)
    EXPECT_FLOAT_EQ(g(i), y(i));  // same mask, same scaling
}

TEST(Dropout, RejectsRateOne) {
  Rng rng(8);
  EXPECT_THROW(Dropout(1.0f, rng), InvalidArgument);
}

TEST(Embedding, LookupAddsPosition) {
  Rng rng(9);
  SequenceEmbedding emb("e", 10, 4, 3, rng);
  TokenBatch batch;
  batch.batch = 1;
  batch.seq = 2;
  batch.ids = {7, 7};
  batch.lengths = {2};
  const Tensor out = emb.forward(batch);
  // Same token at different positions differs by the position embedding.
  for (std::size_t j = 0; j < 3; ++j) {
    const float diff = out(0, j) - out(1, j);
    const float want = emb.position.value(0, j) - emb.position.value(1, j);
    EXPECT_NEAR(diff, want, 1e-6f);
  }
}

TEST(Embedding, RejectsOutOfVocabIds) {
  Rng rng(10);
  SequenceEmbedding emb("e", 10, 4, 3, rng);
  TokenBatch batch;
  batch.batch = 1;
  batch.seq = 1;
  batch.ids = {10};
  batch.lengths = {1};
  EXPECT_THROW(emb.forward(batch), InvalidArgument);
}

TEST(Embedding, GradAccumulatesPerToken) {
  Rng rng(11);
  SequenceEmbedding emb("e", 5, 4, 2, rng);
  TokenBatch batch;
  batch.batch = 1;
  batch.seq = 3;
  batch.ids = {2, 2, 4};
  batch.lengths = {3};
  emb.forward(batch);
  Tensor grad = Tensor::full({3, 2}, 1.0f);
  emb.backward(grad);
  EXPECT_FLOAT_EQ(emb.token.grad(2, 0), 2.0f);  // token 2 appears twice
  EXPECT_FLOAT_EQ(emb.token.grad(4, 0), 1.0f);
  EXPECT_FLOAT_EQ(emb.token.grad(0, 0), 0.0f);
}

TEST(Attention, PaddingKeysAreInert) {
  Rng rng(12);
  const std::size_t D = 8;
  MultiHeadSelfAttention attn("a", D, 2, rng);
  // Two samples with identical valid prefix; second has extra garbage rows
  // beyond its length. Valid-position outputs must be identical.
  Tensor x({2 * 4, D});
  Rng fill(99);
  for (std::size_t s = 0; s < 2; ++s)
    for (std::size_t j = 0; j < D; ++j) {
      const float v = fill.normal();
      x(0 * 4 * D + s * D + j) = v;
      x(1 * 4 * D + s * D + j) = v;
    }
  for (std::size_t s = 2; s < 4; ++s)
    for (std::size_t j = 0; j < D; ++j) x((4 + s) * D + j) = 1e3f;  // garbage
  const std::vector<int> lengths = {2, 2};
  const Tensor y = attn.forward(x, 2, 4, lengths, false);
  for (std::size_t s = 0; s < 2; ++s)
    for (std::size_t j = 0; j < D; ++j)
      EXPECT_NEAR(y(s * D + j), y((4 + s) * D + j), 1e-4f);
}

TEST(Attention, ProbabilitiesRowsSumToOne) {
  Rng rng(13);
  MultiHeadSelfAttention attn("a", 8, 4, rng);
  const Tensor x = Tensor::randn({6, 8}, rng);
  const std::vector<int> lengths = {6};
  attn.forward(x, 1, 6, lengths, false);
  const Tensor& probs = attn.last_probs();
  EXPECT_EQ(probs.shape(), (std::vector<std::size_t>{4, 6, 6}));
  for (std::size_t h = 0; h < 4; ++h)
    for (std::size_t s = 0; s < 6; ++s) {
      float total = 0;
      for (std::size_t t = 0; t < 6; ++t) total += probs(h, s, t);
      EXPECT_NEAR(total, 1.0f, 1e-5f);
    }
}

TEST(Attention, RejectsIndivisibleHeads) {
  Rng rng(14);
  EXPECT_THROW(MultiHeadSelfAttention("a", 10, 3, rng), InvalidArgument);
}

TEST(Encoder, OutputGeometry) {
  Rng rng(15);
  EncoderConfig cfg;
  cfg.vocab_size = 20;
  cfg.max_seq = 8;
  cfg.dim = 16;
  cfg.heads = 4;
  cfg.layers = 2;
  cfg.ffn_dim = 32;
  TransformerEncoder encoder(cfg, rng);
  TokenBatch batch;
  batch.batch = 3;
  batch.seq = 5;
  batch.ids.assign(15, 1);
  batch.lengths = {5, 2, 4};
  const Tensor h = encoder.forward(batch, false);
  EXPECT_EQ(h.shape(), (std::vector<std::size_t>{15, 16}));
  const Tensor pooled = pooled_cls(h, 3, 5);
  EXPECT_EQ(pooled.shape(), (std::vector<std::size_t>{3, 16}));
}

TEST(Encoder, RejectsOverlongSequence) {
  Rng rng(16);
  EncoderConfig cfg;
  cfg.vocab_size = 20;
  cfg.max_seq = 4;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn_dim = 8;
  TransformerEncoder encoder(cfg, rng);
  TokenBatch batch;
  batch.batch = 1;
  batch.seq = 5;
  batch.ids.assign(5, 1);
  batch.lengths = {5};
  EXPECT_THROW(encoder.forward(batch, false), InvalidArgument);
}

TEST(Encoder, ConfigValidation) {
  EncoderConfig cfg;
  cfg.vocab_size = 0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.vocab_size = 10;
  cfg.dim = 10;
  cfg.heads = 3;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(Encoder, ParameterCountMatchesArchitecture) {
  Rng rng(17);
  EncoderConfig cfg;
  cfg.vocab_size = 100;
  cfg.max_seq = 16;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn_dim = 12;
  TransformerEncoder encoder(cfg, rng);
  std::vector<Parameter*> params;
  encoder.collect_parameters(params);
  // embeddings: 100*8 + 16*8; block: 2 LN (2*8 each) + 4 proj (8*8+8 each)
  // + ffn1 (8*12+12) + ffn2 (12*8+8); final LN 2*8.
  const std::size_t expected = 100 * 8 + 16 * 8 + 2 * 16 + 4 * 72 + (96 + 12) +
                               (96 + 8) + 16;
  EXPECT_EQ(parameter_count(params), expected);
}

TEST(PooledCls, ScatterIsAdjoint) {
  Rng rng(18);
  const Tensor g = Tensor::randn({2, 3}, rng);
  const Tensor scattered = scatter_cls_grad(g, 2, 4);
  EXPECT_EQ(scattered.shape(), (std::vector<std::size_t>{8, 3}));
  EXPECT_FLOAT_EQ(scattered(0, 0), g(0, 0));
  EXPECT_FLOAT_EQ(scattered(4, 2), g(1, 2));
  EXPECT_FLOAT_EQ(scattered(1, 0), 0.0f);
}

TEST(Loss, PositiveProbabilitiesMatchSoftmax) {
  Tensor logits = Tensor::from({2, 2}, {0.0f, 0.0f, 1.0f, 3.0f});
  const auto probs = positive_probabilities(logits);
  EXPECT_NEAR(probs[0], 0.5f, 1e-6f);
  EXPECT_NEAR(probs[1], 1.0f / (1.0f + std::exp(-2.0f)), 1e-5f);
}

TEST(Loss, AllIgnoredYieldsZero) {
  Tensor logits = Tensor::from({2, 2}, {1, 2, 3, 4});
  const std::vector<std::int32_t> labels = {SoftmaxCrossEntropy::kIgnore,
                                            SoftmaxCrossEntropy::kIgnore};
  SoftmaxCrossEntropy loss;
  EXPECT_FLOAT_EQ(loss.forward(logits, labels), 0.0f);
  EXPECT_FLOAT_EQ(loss.backward().sum(), 0.0f);
}

TEST(Loss, RejectsBadLabel) {
  Tensor logits({1, 2});
  const std::vector<std::int32_t> labels = {2};
  SoftmaxCrossEntropy loss;
  EXPECT_THROW(loss.forward(logits, labels), InvalidArgument);
}

TEST(AdamW, MovesAgainstGradient) {
  Parameter p("w", Tensor::full({4}, 1.0f));
  p.grad.fill(1.0f);
  AdamW opt(AdamWConfig{.lr = 0.1f, .weight_decay = 0.0f});
  opt.step({&p});
  for (std::size_t i = 0; i < 4; ++i) EXPECT_LT(p.value(i), 1.0f);
}

TEST(AdamW, WeightDecayShrinksRank2Only) {
  Parameter w("w", Tensor::full({2, 2}, 1.0f));
  Parameter b("b", Tensor::full({2}, 1.0f));
  // No gradient signal; only decay acts.
  AdamW opt(AdamWConfig{.lr = 0.1f, .weight_decay = 0.5f});
  opt.step({&w, &b});
  EXPECT_LT(w.value(0), 1.0f);
  EXPECT_FLOAT_EQ(b.value(0), 1.0f);
}

TEST(AdamW, DetectsParameterListChange) {
  Parameter a("a", Tensor({2}));
  Parameter b("b", Tensor({2}));
  AdamW opt;
  opt.step({&a});
  EXPECT_THROW(opt.step({&a, &b}), InvalidArgument);
}

TEST(ClipGradientNorm, ScalesDownOnly) {
  Parameter p("w", Tensor({2}));
  p.grad(0) = 3.0f;
  p.grad(1) = 4.0f;
  const double norm = clip_gradient_norm({&p}, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(std::sqrt(squared_norm(p.grad)), 1.0, 1e-5);
  // Below the cap: untouched.
  p.grad(0) = 0.3f;
  p.grad(1) = 0.4f;
  clip_gradient_norm({&p}, 1.0);
  EXPECT_FLOAT_EQ(p.grad(0), 0.3f);
}

TEST(Schedule, WarmupThenDecay) {
  WarmupLinearSchedule sched(1.0f, 10, 110, 0.1f);
  EXPECT_NEAR(sched.lr_at(0), 0.1f, 1e-6f);
  EXPECT_NEAR(sched.lr_at(9), 1.0f, 1e-6f);
  EXPECT_GT(sched.lr_at(10), sched.lr_at(60));
  EXPECT_NEAR(sched.lr_at(1000), 0.1f, 1e-6f);
}

TEST(Checkpoint, SaveRestoreRoundTrip) {
  Rng rng(19);
  Linear a("fc", 3, 2, rng);
  const Tensor original = a.weight.value;
  const std::string path =
      (std::filesystem::temp_directory_path() / "clpp_ckpt_test.bin").string();
  std::vector<Parameter*> params;
  a.collect_parameters(params);
  save_checkpoint(path, params);

  Rng rng2(999);
  Linear b("fc", 3, 2, rng2);
  ASSERT_FALSE(b.weight.value.allclose(original, 1e-6f));
  std::vector<Parameter*> params_b;
  b.collect_parameters(params_b);
  const auto loaded = load_checkpoint(path);
  EXPECT_EQ(restore_parameters(loaded, params_b, /*strict=*/true), 2u);
  EXPECT_TRUE(b.weight.value.allclose(original, 0.0f));
  std::remove(path.c_str());
}

TEST(Checkpoint, PartialRestoreNonStrict) {
  Rng rng(20);
  Linear enc("encoder.fc", 3, 2, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "clpp_ckpt_partial.bin").string();
  std::vector<Parameter*> params;
  enc.collect_parameters(params);
  save_checkpoint(path, params);

  Linear enc2("encoder.fc", 3, 2, rng);
  Linear head("head.fc", 2, 2, rng);
  std::vector<Parameter*> both;
  enc2.collect_parameters(both);
  head.collect_parameters(both);
  const auto loaded = load_checkpoint(path);
  EXPECT_THROW(restore_parameters(loaded, both, /*strict=*/true), ParseError);
  EXPECT_EQ(restore_parameters(loaded, both, /*strict=*/false), 2u);
  std::remove(path.c_str());
}

TEST(Mlm, MaskingRespectsSpecialAndPad) {
  Rng rng(21);
  TokenBatch batch;
  batch.batch = 4;
  batch.seq = 20;
  batch.ids.assign(80, 5);
  for (std::size_t b = 0; b < 4; ++b) batch.ids[b * 20] = 1;  // CLS-like special
  batch.lengths = {20, 20, 10, 10};
  MlmVocabInfo vocab{.mask_id = 3, .special_below = 4, .vocab_size = 50};
  const MaskedBatch masked = mask_tokens(batch, vocab, rng, 0.5f);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(masked.inputs.ids[b * 20], 1);  // specials never masked
    EXPECT_EQ(masked.targets[b * 20], -1);
    for (std::size_t s = batch.lengths[b]; s < 20; ++s)
      EXPECT_EQ(masked.targets[b * 20 + s], -1);  // pads never masked
  }
  // Roughly half of the maskable positions were selected.
  std::size_t masked_count = 0;
  for (auto t : masked.targets) masked_count += (t >= 0);
  EXPECT_GT(masked_count, 15u);
  EXPECT_LT(masked_count, 45u);
}

TEST(Mlm, TargetsHoldOriginalIds) {
  Rng rng(22);
  TokenBatch batch;
  batch.batch = 1;
  batch.seq = 30;
  batch.ids.resize(30);
  for (std::size_t i = 0; i < 30; ++i) batch.ids[i] = static_cast<std::int32_t>(10 + i);
  batch.lengths = {30};
  MlmVocabInfo vocab{.mask_id = 3, .special_below = 4, .vocab_size = 100};
  const MaskedBatch masked = mask_tokens(batch, vocab, rng, 0.4f);
  for (std::size_t i = 0; i < 30; ++i)
    if (masked.targets[i] >= 0) {
      EXPECT_EQ(masked.targets[i], batch.ids[i]);
    }
}

}  // namespace
}  // namespace clpp::nn
