// clpp::lint — rule-by-rule linter tests, rendering, audit, and the
// race-detector property guards over the codegen families.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "codegen/families.h"
#include "codegen/generator.h"
#include "frontend/parser.h"
#include "lint/audit.h"
#include "lint/explain.h"
#include "lint/linter.h"

namespace clpp::lint {
namespace {

using frontend::Node;
using frontend::NodeKind;
using frontend::NodePtr;
using frontend::OmpDirective;

/// Lints `directive` + "\n" + `code` (pragma immediately above the loop).
LintReport lint(const std::string& directive, const std::string& code,
                LintOptions options = {}) {
  return Linter(options).lint_source(directive + "\n" + code);
}

const Diagnostic* find_rule(const LintReport& report, const std::string& rule_id) {
  for (const Diagnostic& d : report.diagnostics)
    if (d.rule == rule_id) return &d;
  return nullptr;
}

/// Corpus-convention lint: the directive governs the snippet's first loop.
LintReport lint_first_loop(const std::string& code, const OmpDirective& directive) {
  const NodePtr unit = frontend::parse_snippet(code);
  const Node* loop = nullptr;
  frontend::walk(*unit, [&](const Node& node, int) {
    if (loop == nullptr && node.kind == NodeKind::kFor) loop = &node;
  });
  return Linter{}.lint_loop(*unit, directive, loop);
}

OmpDirective bare_parallel_for() {
  OmpDirective d;
  d.parallel = true;
  d.for_loop = true;
  return d;
}

// --- missing-private ---------------------------------------------------------------

TEST(Lint, MissingPrivateFiresWithFixit) {
  const auto report = lint("#pragma omp parallel for",
                           "for (i = 0; i < n; i++) {\n"
                           "  t = a[i] * 2.0;\n"
                           "  b[i] = t + t;\n"
                           "}\n");
  const Diagnostic* d = find_rule(report, rule::kMissingPrivate);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->fix.find("private(t)"), std::string::npos) << d->fix;
  EXPECT_EQ(d->range.line, 3) << "anchored at the first write of t";
  EXPECT_EQ(d->range.column, 3);
}

TEST(Lint, MissingPrivateSilentWhenPrivatized) {
  for (const char* pragma :
       {"#pragma omp parallel for private(t)",
        "#pragma omp parallel for lastprivate(t)"}) {
    const auto report = lint(pragma,
                             "for (i = 0; i < n; i++) {\n"
                             "  t = a[i] * 2.0;\n"
                             "  b[i] = t + t;\n"
                             "}\n");
    EXPECT_FALSE(report.has_rule(rule::kMissingPrivate)) << pragma;
    EXPECT_EQ(report.errors(), 0u) << pragma;
  }
}

// --- missing-reduction -------------------------------------------------------------

TEST(Lint, MissingReductionFiresWithFixit) {
  const auto report = lint("#pragma omp parallel for",
                           "for (i = 0; i < n; i++)\n"
                           "  s = s + a[i];\n");
  const Diagnostic* d = find_rule(report, rule::kMissingReduction);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->fix.find("reduction(+: s)"), std::string::npos) << d->fix;
}

TEST(Lint, MissingReductionRecognizesMinMax) {
  const auto firing = lint("#pragma omp parallel for",
                           "for (i = 0; i < n; i++)\n"
                           "  if (a[i] > m) m = a[i];\n");
  const Diagnostic* d = find_rule(firing, rule::kMissingReduction);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("max"), std::string::npos) << d->message;

  const auto silent = lint("#pragma omp parallel for reduction(max: m)",
                           "for (i = 0; i < n; i++)\n"
                           "  if (a[i] > m) m = a[i];\n");
  EXPECT_FALSE(silent.has_rule(rule::kMissingReduction));
  EXPECT_EQ(silent.errors(), 0u);
}

TEST(Lint, ReductionOperatorMismatchCountsAsMissing) {
  const auto report = lint("#pragma omp parallel for reduction(*: s)",
                           "for (i = 0; i < n; i++)\n"
                           "  s += a[i];\n");
  const Diagnostic* d = find_rule(report, rule::kMissingReduction);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("mismatch"), std::string::npos) << d->message;
  EXPECT_NE(d->fix.find("reduction(+: s)"), std::string::npos) << d->fix;
}

TEST(Lint, PrivatizedAccumulatorStillNeedsReduction) {
  const auto report = lint("#pragma omp parallel for private(s)",
                           "for (i = 0; i < n; i++)\n"
                           "  s = s + a[i];\n");
  EXPECT_TRUE(report.has_rule(rule::kMissingReduction));
  // The broken privatization is reported once, not echoed by the
  // uninitialized-private rule too.
  EXPECT_FALSE(report.has_rule(rule::kUninitializedPrivate));
}

// --- shared-induction --------------------------------------------------------------

TEST(Lint, SharedInductionFiresAndFixDropsIt) {
  const auto report = lint("#pragma omp parallel for shared(i, n)",
                           "for (i = 0; i < n; i++)\n"
                           "  a[i] = b[i];\n");
  const Diagnostic* d = find_rule(report, rule::kSharedInduction);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->fix.find("shared(i"), std::string::npos) << d->fix;
  EXPECT_NE(d->fix.find("shared(n)"), std::string::npos)
      << "other shared vars survive the fix: " << d->fix;
}

TEST(Lint, SharedNonInductionIsFine) {
  const auto report = lint("#pragma omp parallel for shared(a, b, n)",
                           "for (i = 0; i < n; i++)\n"
                           "  a[i] = b[i];\n");
  EXPECT_FALSE(report.has_rule(rule::kSharedInduction));
  EXPECT_EQ(report.errors(), 0u);
}

// --- uninitialized-private ---------------------------------------------------------

TEST(Lint, UninitializedPrivateWarnsAndSuggestsFirstprivate) {
  const auto report = lint("#pragma omp parallel for private(scale)",
                           "for (i = 0; i < n; i++)\n"
                           "  a[i] = b[i] * scale;\n");
  const Diagnostic* d = find_rule(report, rule::kUninitializedPrivate);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->fix.find("firstprivate(scale)"), std::string::npos) << d->fix;
}

TEST(Lint, FirstprivateAndDefBeforeUseAreFine) {
  const auto fp = lint("#pragma omp parallel for firstprivate(scale)",
                       "for (i = 0; i < n; i++)\n"
                       "  a[i] = b[i] * scale;\n");
  EXPECT_FALSE(fp.has_rule(rule::kUninitializedPrivate));

  const auto def_first = lint("#pragma omp parallel for private(t)",
                              "for (i = 0; i < n; i++) {\n"
                              "  t = b[i] * 2.0;\n"
                              "  a[i] = t;\n"
                              "}\n");
  EXPECT_FALSE(def_first.has_rule(rule::kUninitializedPrivate));
}

// --- loop-carried-dependence -------------------------------------------------------

TEST(Lint, ArrayRecurrenceIsAnError) {
  const auto report = lint("#pragma omp parallel for",
                           "for (i = 1; i < n; i++)\n"
                           "  a[i] = a[i - 1] + b[i];\n");
  const Diagnostic* d = find_rule(report, rule::kLoopCarried);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("'a'"), std::string::npos) << d->message;
}

TEST(Lint, IndependentElementwiseIsClean) {
  const auto report = lint("#pragma omp parallel for",
                           "for (i = 0; i < n; i++)\n"
                           "  a[i] = b[i] + c[i];\n");
  EXPECT_TRUE(report.clean()) << report.to_text();
  EXPECT_EQ(report.loops_checked, 1u);
}

TEST(Lint, ScalarCarriedCoveredByPrivateClauseIsNotADependence) {
  const char* code =
      "for (i = 0; i < n; i++) {\n"
      "  t = c[i] + t * 0.5;\n"
      "  b[i] = t;\n"
      "}\n";
  const auto bare = lint("#pragma omp parallel for", code);
  EXPECT_TRUE(bare.has_rule(rule::kLoopCarried));
  const auto covered = lint("#pragma omp parallel for private(t)", code);
  EXPECT_FALSE(covered.has_rule(rule::kLoopCarried))
      << "privatization cuts the cross-iteration edge";
}

// --- non-canonical-loop ------------------------------------------------------------

TEST(Lint, NonCanonicalLoopForms) {
  const auto not_a_for = lint("#pragma omp parallel for",
                              "while (n > 0)\n  n = n - 1;\n");
  EXPECT_TRUE(not_a_for.has_rule(rule::kNonCanonicalLoop));

  const auto geometric = lint("#pragma omp parallel for",
                              "for (i = 1; i < n; i *= 2)\n  a[i] = 0;\n");
  EXPECT_TRUE(geometric.has_rule(rule::kNonCanonicalLoop));

  const auto breaks = lint("#pragma omp parallel for",
                           "for (i = 0; i < n; i++) {\n"
                           "  if (a[i] == key) break;\n"
                           "}\n");
  EXPECT_TRUE(breaks.has_rule(rule::kNonCanonicalLoop));
}

// --- small-trip-count --------------------------------------------------------------

TEST(Lint, SmallTripCountThresholdIsTunable) {
  const char* code = "for (i = 0; i < 4; i++)\n  a[i] = b[i];\n";
  const auto firing = lint("#pragma omp parallel for", code);
  const Diagnostic* d = find_rule(firing, rule::kSmallTripCount);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);

  LintOptions lax;
  lax.small_trip_threshold = 2;
  EXPECT_FALSE(lint("#pragma omp parallel for", code, lax)
                   .has_rule(rule::kSmallTripCount));

  const auto big = lint("#pragma omp parallel for",
                        "for (i = 0; i < 4096; i++)\n  a[i] = b[i];\n");
  EXPECT_FALSE(big.has_rule(rule::kSmallTripCount));
}

// --- unknown-call-effect -----------------------------------------------------------

TEST(Lint, UnknownCallEffectWarnsOncePerCallee) {
  const auto report = lint("#pragma omp parallel for",
                           "for (i = 0; i < n; i++) {\n"
                           "  a[i] = mystery(b[i]);\n"
                           "  c[i] = mystery(a[i]);\n"
                           "}\n");
  std::size_t firings = 0;
  for (const Diagnostic& d : report.diagnostics)
    if (d.rule == rule::kUnknownCallEffect) ++firings;
  EXPECT_EQ(firings, 1u);
  EXPECT_EQ(report.errors(), 0u) << "conservative finding stays a warning";
}

TEST(Lint, PureCalleesDoNotWarn) {
  const auto libm = lint("#pragma omp parallel for",
                         "for (i = 0; i < n; i++)\n  a[i] = sqrt(b[i]);\n");
  EXPECT_FALSE(libm.has_rule(rule::kUnknownCallEffect));

  const auto local = lint("#pragma omp parallel for",
                          "double square(double x) { return x * x; }\n"
                          "for (i = 0; i < n; i++)\n  a[i] = square(b[i]);\n");
  EXPECT_FALSE(local.has_rule(rule::kUnknownCallEffect))
      << "locally defined pure helper is provably safe";
}

// --- parse-error + rendering -------------------------------------------------------

TEST(Lint, ParseFailureIsADiagnosticNotAThrow) {
  const auto report = Linter{}.lint_source("#pragma omp parallel for\nfor (i = 0 ;;");
  EXPECT_TRUE(report.has_rule(rule::kParseError));
  EXPECT_GE(report.errors(), 1u);
}

TEST(Lint, TextRenderingCarriesPositionRuleAndFix) {
  const auto report = Linter{}.lint_source(
      "#pragma omp parallel for\nfor (i = 0; i < n; i++)\n  s = s + a[i];\n",
      "kernel.c");
  const std::string text = report.to_text();
  EXPECT_NE(text.find("kernel.c:3:3: error:"), std::string::npos) << text;
  EXPECT_NE(text.find("[missing-reduction]"), std::string::npos) << text;
  EXPECT_NE(text.find("suggested fix: #pragma omp parallel for reduction(+: s)"),
            std::string::npos)
      << text;
}

TEST(Lint, JsonRenderingIsSarifLite) {
  const auto report = Linter{}.lint_source(
      "#pragma omp parallel for\nfor (i = 0; i < n; i++)\n  s = s + a[i];\n",
      "kernel.c");
  const Json doc = report.to_json();
  EXPECT_EQ(doc.at("file").as_string(), "kernel.c");
  EXPECT_EQ(doc.at("loops_checked").as_int(), 1);
  EXPECT_GE(doc.at("errors").as_int(), 1);
  ASSERT_GE(doc.at("diagnostics").size(), 1u);
  const Json& first = doc.at("diagnostics").at(std::size_t{0});
  EXPECT_EQ(first.at("rule").as_string(), "missing-reduction");
  EXPECT_EQ(first.at("level").as_string(), "error");
  EXPECT_EQ(first.at("line").as_int(), 3);
  EXPECT_EQ(first.at("column").as_int(), 3);
  EXPECT_GE(first.at("end_column").as_int(), first.at("column").as_int());
  EXPECT_NE(first.at("fix").as_string().find("reduction(+: s)"), std::string::npos);
}

TEST(Lint, FixitsCanBeSuppressed) {
  LintOptions options;
  options.emit_fixits = false;
  const auto report = lint("#pragma omp parallel for",
                           "for (i = 0; i < n; i++)\n  s = s + a[i];\n", options);
  const Diagnostic* d = find_rule(report, rule::kMissingReduction);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->fix.empty());
}

TEST(Lint, CorrectDirectiveOnRealisticKernelIsErrorFree) {
  const auto report =
      lint("#pragma omp parallel for private(t) reduction(+: norm)",
           "for (i = 0; i < n; i++) {\n"
           "  t = x[i] - y[i];\n"
           "  norm = norm + t * t;\n"
           "}\n");
  EXPECT_EQ(report.errors(), 0u) << report.to_text();
}

// --- race-detector property guards over the generator families --------------------

/// Families whose bodies carry a real loop-carried dependence: slapping a
/// bare `parallel for` on them must NEVER get a clean bill of health.
TEST(LintProperty, KnownRacyFamiliesNeverLintClean) {
  Rng rng(99);
  for (const char* name :
       {"recurrence", "scalar_carried", "outer_dependent", "indirect_write"}) {
    const codegen::Family& family = codegen::family_by_name(name);
    for (int trial = 0; trial < 40; ++trial) {
      const codegen::GeneratedSnippet snippet = family.make(rng);
      const auto report = lint_first_loop(snippet.code, bare_parallel_for());
      EXPECT_GE(report.errors(), 1u)
          << name << " snippet lints clean:\n"
          << snippet.code << report.to_text();
    }
  }
}

/// Families that are safe under their own ground-truth directive must never
/// draw an error-severity race finding (warnings — e.g. unknown extern
/// kernels — are allowed).
TEST(LintProperty, KnownSafeFamiliesNeverDrawRaceErrors) {
  Rng rng(7);
  for (const char* name :
       {"init_1d", "init_2d", "elementwise", "offset_read", "stencil",
        "private_temp", "triangular", "sum_reduction", "minmax_reduction",
        "prod_reduction"}) {
    const codegen::Family& family = codegen::family_by_name(name);
    for (int trial = 0; trial < 40; ++trial) {
      const codegen::GeneratedSnippet snippet = family.make(rng);
      ASSERT_TRUE(snippet.has_directive) << name;
      const auto report = lint_first_loop(snippet.code, snippet.directive);
      EXPECT_EQ(report.errors(), 0u)
          << name << " drew an error under its ground-truth directive:\n"
          << snippet.directive.to_string() << "\n"
          << snippet.code << report.to_text();
    }
  }
}

// --- lint_audit --------------------------------------------------------------------

TEST(LintAudit, CatchesEverySeededBug) {
  codegen::GeneratorConfig config;
  config.size = 250;
  config.seed = 41;
  config.label_noise = 0.0;
  config.buggy_directive_rate = 0.3;
  const corpus::Corpus corpus = codegen::generate_corpus(config);

  const AuditReport report = audit_labels(corpus);
  EXPECT_EQ(report.records, corpus.size());
  EXPECT_GT(report.seeded_bugs, 0u);
  EXPECT_EQ(report.bugs_missed, 0u) << report.to_text();
  EXPECT_DOUBLE_EQ(report.catch_rate(), 1.0);
  // Every seeded rule id shows up in the confusion counts.
  for (const corpus::Record& record : corpus.records()) {
    if (record.bug.empty()) continue;
    EXPECT_GT(report.rule_counts.count(record.bug), 0u) << record.bug;
  }
}

TEST(LintAudit, FaithfulLabelsAreMostlyClean) {
  codegen::GeneratorConfig config;
  config.size = 250;
  config.seed = 41;
  config.label_noise = 0.0;
  config.buggy_directive_rate = 0.0;
  const corpus::Corpus corpus = codegen::generate_corpus(config);

  const AuditReport report = audit_labels(corpus);
  EXPECT_EQ(report.seeded_bugs, 0u);
  EXPECT_GT(report.linted, 0u);
  // Conservative disagreement (e.g. linearized matmul subscripts) is
  // allowed but must stay a small minority of the faithful labels.
  EXPECT_LT(report.clean_flagged, report.linted / 10) << report.to_text();
}

TEST(LintAudit, PredictionAuditDisagreesWithWrongPredictions) {
  codegen::GeneratorConfig config;
  config.size = 60;
  config.seed = 5;
  config.label_noise = 0.0;
  const corpus::Corpus corpus = codegen::generate_corpus(config);

  // A "model" that blankets every snippet with a bare pragma: the linter
  // must flag at least the provably-racy negatives.
  std::vector<std::string> predictions(corpus.size(),
                                       bare_parallel_for().to_string());
  const AuditReport report = audit_predictions(corpus, predictions);
  EXPECT_EQ(report.subject, "predictions");
  EXPECT_EQ(report.linted, corpus.size());
  EXPECT_GT(report.with_errors, 0u);

  EXPECT_THROW(audit_predictions(corpus, std::vector<std::string>{}), Error);
}

TEST(LintAudit, JsonReportRoundTrips) {
  codegen::GeneratorConfig config;
  config.size = 80;
  config.seed = 11;
  config.buggy_directive_rate = 0.25;
  const corpus::Corpus corpus = codegen::generate_corpus(config);
  const AuditReport report = audit_labels(corpus);

  const Json doc = Json::parse(report.to_json().dump());
  EXPECT_EQ(doc.at("subject").as_string(), "labels");
  EXPECT_EQ(static_cast<std::size_t>(doc.at("records").as_int()), report.records);
  EXPECT_EQ(static_cast<std::size_t>(doc.at("bugs_caught").as_int()),
            report.bugs_caught);
  EXPECT_EQ(doc.at("rows").size(), report.linted);
}

// --- omp simd rule family ----------------------------------------------------------

TEST(LintSimd, UnitDistanceDependenceIsAnError) {
  const auto report = lint("#pragma omp simd",
                           "for (i = 1; i < n; i++)\n"
                           "  a[i] = a[i - 1] + x[i];\n");
  const Diagnostic* d = find_rule(report, rule::kSimdUnsafeDep);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  // Distance 1: no safelen can license it, so no fix-it is offered.
  EXPECT_TRUE(d->fix.empty());
  // The worksharing race rules must not double-report under pure simd.
  EXPECT_EQ(find_rule(report, rule::kLoopCarried), nullptr);
}

TEST(LintSimd, WideDistanceSuggestsSafelen) {
  const auto report = lint("#pragma omp simd",
                           "for (i = 4; i < n; i++)\n"
                           "  a[i] = a[i - 4] + 1.0;\n");
  const Diagnostic* d = find_rule(report, rule::kSimdMissesSafelen);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->fix.find("safelen(4)"), std::string::npos) << d->fix;
}

TEST(LintSimd, OversizedSafelenIsAnErrorWithTightenedFix) {
  const auto report = lint("#pragma omp simd safelen(8)",
                           "for (i = 4; i < n; i++)\n"
                           "  a[i] = a[i - 4] + 1.0;\n");
  const Diagnostic* d = find_rule(report, rule::kSimdUnsafeDep);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->fix.find("safelen(4)"), std::string::npos) << d->fix;
}

TEST(LintSimd, LegalSafelenLintsClean) {
  const auto report = lint("#pragma omp simd safelen(4)",
                           "for (i = 4; i < n; i++)\n"
                           "  a[i] = a[i - 4] + 1.0;\n");
  EXPECT_EQ(report.errors(), 0u) << report.to_text();
  EXPECT_EQ(find_rule(report, rule::kSimdMissesSafelen), nullptr);
  EXPECT_EQ(find_rule(report, rule::kSimdUnsafeDep), nullptr);
}

TEST(LintSimd, ReductionMismatchOnBareSimd) {
  const auto report = lint("#pragma omp simd",
                           "for (i = 0; i < n; i++)\n"
                           "  s += a[i] * b[i];\n");
  const Diagnostic* d = find_rule(report, rule::kSimdReductionMismatch);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->fix.find("reduction(+: s)"), std::string::npos) << d->fix;
  EXPECT_EQ(find_rule(report, rule::kMissingReduction), nullptr);
}

TEST(LintSimd, DeclaredReductionLintsClean) {
  const auto report = lint("#pragma omp simd reduction(+: s)",
                           "for (i = 0; i < n; i++)\n"
                           "  s += a[i] * b[i];\n");
  EXPECT_EQ(report.errors(), 0u) << report.to_text();
}

TEST(LintSimd, NonInnermostSimdWarnsAndFixDropsSimd) {
  const auto report = lint("#pragma omp parallel for simd private(j)",
                           "for (i = 0; i < n; i++)\n"
                           "  for (j = 0; j < m; j++)\n"
                           "    out[i][j] = in[i][j] * 2.0;\n");
  const Diagnostic* d = find_rule(report, rule::kSimdNonInnermost);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_FALSE(d->fix.empty());
  EXPECT_EQ(d->fix.find("simd"), std::string::npos) << d->fix;
  EXPECT_NE(d->fix.find("parallel for"), std::string::npos) << d->fix;
}

TEST(LintSimd, InnermostSimdOnCleanLoopIsQuiet) {
  const auto report = lint("#pragma omp simd",
                           "for (i = 0; i < n; i++)\n"
                           "  y[i] = y[i] + a * x[i];\n");
  EXPECT_EQ(report.errors(), 0u) << report.to_text();
  EXPECT_EQ(find_rule(report, rule::kSimdNonInnermost), nullptr);
}

TEST(LintSimd, CombinedConstructKeepsWorksharingRules) {
  // parallel-for-simd still runs the worksharing race rules: a missing
  // private must fire as missing-private, not get rerouted to simd-*.
  const auto report = lint("#pragma omp parallel for simd",
                           "for (i = 0; i < n; i++) {\n"
                           "  t = a[i] * 2.0;\n"
                           "  b[i] = t + t;\n"
                           "}\n");
  EXPECT_NE(find_rule(report, rule::kMissingPrivate), nullptr);
}

// --- SARIF rendering ---------------------------------------------------------------

TEST(LintSarif, DocumentShapeAndResults) {
  LintReport report = lint("#pragma omp simd",
                           "for (i = 1; i < n; i++)\n"
                           "  a[i] = a[i - 1] + x[i];\n");
  report.file = "snippet.c";
  const Json doc = Json::parse(sarif_document({report}).dump());
  EXPECT_EQ(doc.at("version").as_string(), "2.1.0");
  EXPECT_NE(doc.at("$schema").as_string().find("sarif-schema-2.1.0"),
            std::string::npos);
  const Json& run = doc.at("runs").at(0);
  EXPECT_EQ(run.at("tool").at("driver").at("name").as_string(), "clpp-lint");
  const Json& rules = run.at("tool").at("driver").at("rules");
  EXPECT_EQ(rules.size(), all_rules().size());
  const Json& results = run.at("results");
  ASSERT_GE(results.size(), 1u);
  bool found = false;
  for (std::size_t r = 0; r < results.size(); ++r) {
    const Json& result = results.at(r);
    if (result.at("ruleId").as_string() != rule::kSimdUnsafeDep) continue;
    found = true;
    EXPECT_EQ(result.at("level").as_string(), "error");
    const Json& location = result.at("locations").at(0);
    EXPECT_EQ(location.at("physicalLocation")
                  .at("artifactLocation")
                  .at("uri")
                  .as_string(),
              "snippet.c");
    // ruleIndex must point back into the rules array.
    const auto index = static_cast<std::size_t>(result.at("ruleIndex").as_int());
    ASSERT_LT(index, rules.size());
    EXPECT_EQ(rules.at(index).at("id").as_string(), rule::kSimdUnsafeDep);
  }
  EXPECT_TRUE(found);
}

TEST(LintSarif, FixitsBecomeSarifFixes) {
  LintReport report = lint("#pragma omp parallel for",
                           "for (i = 0; i < n; i++) {\n"
                           "  t = a[i] * 2.0;\n"
                           "  b[i] = t + t;\n"
                           "}\n");
  report.file = "fixme.c";
  const Json doc = Json::parse(sarif_document({report}).dump());
  const Json& results = doc.at("runs").at(0).at("results");
  bool saw_fix = false;
  for (std::size_t r = 0; r < results.size(); ++r) {
    if (!results.at(r).contains("fixes")) continue;
    saw_fix = true;
    const Json& change = results.at(r).at("fixes").at(0).at("artifactChanges").at(0);
    EXPECT_EQ(change.at("artifactLocation").at("uri").as_string(), "fixme.c");
    const Json& replacement = change.at("replacements").at(0);
    EXPECT_NE(replacement.at("insertedContent").at("text").as_string().find("private"),
              std::string::npos);
  }
  EXPECT_TRUE(saw_fix);
}

TEST(LintSarif, JsonReportIsSchemaVersioned) {
  const LintReport report = lint("#pragma omp parallel for",
                                 "for (i = 0; i < n; i++) a[i] = b[i];\n");
  const Json doc = Json::parse(report.to_json().dump());
  EXPECT_EQ(doc.at("schema").as_string(), "clpp.lint.v1");
}

// --- simd families in the audit ----------------------------------------------------

TEST(LintAuditSimd, SeededSimdBugsAllCaughtCleanRecordsUnflagged) {
  codegen::GeneratorConfig config;
  config.size = 300;
  config.seed = 23;
  config.label_noise = 0.0;
  config.buggy_directive_rate = 0.3;
  config.simd_families = true;
  const corpus::Corpus corpus = codegen::generate_corpus(config);

  // The mix must actually contain seeded simd defects.
  std::set<std::string> seeded_rules;
  for (const corpus::Record& record : corpus.records())
    if (!record.bug.empty()) seeded_rules.insert(record.bug);
  bool has_simd_seed = false;
  for (const std::string& rule_id : seeded_rules)
    if (rule_id.rfind("simd-", 0) == 0) has_simd_seed = true;
  EXPECT_TRUE(has_simd_seed);

  const AuditReport report = audit_labels(corpus);
  EXPECT_GT(report.seeded_bugs, 0u);
  EXPECT_EQ(report.bugs_missed, 0u) << report.to_text();
  EXPECT_DOUBLE_EQ(report.catch_rate(), 1.0);
  // The ISSUE acceptance bar: zero clean records flagged with errors.
  EXPECT_EQ(report.clean_flagged, 0u) << report.to_text();
}

// --- realworld fixtures ------------------------------------------------------------

TEST(LintRealworld, AnnotatedKernelsLintClean) {
  for (const char* name : {"gemm.c", "mvt.c", "gemver.c"}) {
    const std::string path = std::string(CLPP_REALWORLD_DIR) + "/" + name;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    const LintReport report = Linter{}.lint_source(text.str());
    EXPECT_EQ(report.errors(), 0u) << name << "\n" << report.to_text();
    EXPECT_GE(report.loops_checked, 1u) << name;
  }
}

TEST(LintExplain, RealworldLoopsAllNameTheirDecidingTests) {
  // Acceptance bar for `clpp-lint --explain`: across all 15 loops of the
  // realworld corpus, every tested pair names a deciding dependence test.
  const std::map<std::string, std::size_t> expected_loops = {
      {"atax.c", 3u},   {"gemm.c", 4u},        {"gemver.c", 2u},
      {"jacobi-1d.c", 3u}, {"mvt.c", 2u},      {"non_parallel.c", 1u}};
  std::size_t total_loops = 0;
  for (const auto& [name, loop_count] : expected_loops) {
    std::ifstream in(std::string(CLPP_REALWORLD_DIR) + "/" + name);
    ASSERT_TRUE(in.good()) << name;
    std::ostringstream text;
    text << in.rdbuf();
    const frontend::NodePtr unit = frontend::parse_snippet(text.str());
    const std::vector<LoopExplanation> loops =
        explain_unit(*unit, Linter{}.options().analyzer);
    EXPECT_EQ(loops.size(), loop_count) << name;
    total_loops += loops.size();
    for (const LoopExplanation& loop : loops) {
      EXPECT_TRUE(loop.canonical) << name;
      EXPECT_TRUE(loop.exact) << name << " line " << loop.line;
      for (const analysis::PairProvenance& pair : loop.pairs)
        EXPECT_FALSE(pair.test.empty()) << name << " line " << loop.line;
    }
    // Renderings carry the same trace: the text names at least one test
    // and the JSON document is schema-versioned with one entry per loop.
    const std::string rendered = render_explanations(name, loops);
    EXPECT_NE(rendered.find("loop at line"), std::string::npos) << name;
    const Json doc = explanations_json(name, loops);
    EXPECT_EQ(doc.at("schema").as_string(), "clpp.explain.v1");
    EXPECT_EQ(doc.at("loops").size(), loops.size()) << name;
  }
  EXPECT_EQ(total_loops, 15u);
}

TEST(LintExplain, NestedLoopsGetDepthAndDocumentOrder) {
  const frontend::NodePtr unit = frontend::parse_snippet(
      "for (i = 0; i < n; i++) { for (j = 1; j < m; j++) a[j] = a[j - 1]; }");
  const std::vector<LoopExplanation> loops =
      explain_unit(*unit, Linter{}.options().analyzer);
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_EQ(loops[0].depth, 0);
  EXPECT_EQ(loops[0].induction, "i");
  EXPECT_EQ(loops[1].depth, 1);
  EXPECT_EQ(loops[1].induction, "j");
  // The inner recurrence is proved carried with a pinned distance.
  EXPECT_FALSE(loops[1].parallelizable);
  bool carried = false;
  for (const analysis::PairProvenance& pair : loops[1].pairs)
    if (pair.carried && pair.distance.has_value() && *pair.distance == 1)
      carried = true;
  EXPECT_TRUE(carried);
}

TEST(Lint, DiagnosticsCarryDependenceProvenance) {
  // A loop-carried array recurrence under `parallel for`: the dependence
  // diagnostic must carry the deciding-test provenance into both renderings.
  const LintReport report = lint("#pragma omp parallel for",
                                 "for (i = 1; i < n; i++) a[i] = a[i - 1];");
  const Diagnostic* d = find_rule(report, rule::kLoopCarried);
  ASSERT_NE(d, nullptr) << report.to_text();
  EXPECT_FALSE(d->provenance.empty());
  EXPECT_NE(d->provenance.find("strong-siv"), std::string::npos)
      << d->provenance;
  EXPECT_NE(report.to_text().find("dependence proof:"), std::string::npos);
  const Json doc = report.to_json();
  bool found = false;
  const Json& diagnostics = doc.at("diagnostics");
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Json& item = diagnostics.at(i);
    if (item.get_string("rule", "") != rule::kLoopCarried) continue;
    found = true;
    EXPECT_EQ(item.at("provenance").as_string(), d->provenance);
  }
  EXPECT_TRUE(found);
}

TEST(LintRealworld, SimdOnIirRecurrenceIsRejected) {
  std::ifstream in(std::string(CLPP_REALWORLD_DIR) + "/non_parallel.c");
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  // Force `#pragma omp simd` onto the distance-1 recurrence loop.
  std::string code = text.str();
  const std::string anchor = "for (i = 1; i < n; i++)";
  const auto at = code.find(anchor);
  ASSERT_NE(at, std::string::npos);
  code.insert(at, "#pragma omp simd\n");
  const LintReport report = Linter{}.lint_source(code);
  const Diagnostic* d = find_rule(report, rule::kSimdUnsafeDep);
  ASSERT_NE(d, nullptr) << report.to_text();
  EXPECT_EQ(d->severity, Severity::kError);
}

}  // namespace
}  // namespace clpp::lint
