// Tests for the C frontend: lexer, parser, printer round-trips, DFS
// serialization, and the OpenMP pragma parser.
#include <gtest/gtest.h>

#include "frontend/dfs.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "frontend/pragma.h"
#include "frontend/printer.h"

namespace clpp::frontend {
namespace {

// --- lexer -------------------------------------------------------------------

TEST(Lexer, TokenizesLoopHeader) {
  const auto tokens = lex("for (i = 0; i <= N; i++)");
  ASSERT_GE(tokens.size(), 13u);
  EXPECT_TRUE(tokens[0].is_keyword("for"));
  EXPECT_TRUE(tokens[1].is_punct("("));
  EXPECT_EQ(tokens[2].text, "i");
  EXPECT_TRUE(tokens[5].is_punct(";"));
  EXPECT_TRUE(tokens[7].is_punct("<="));
  EXPECT_TRUE(tokens[11].is_punct("++"));
}

TEST(Lexer, DistinguishesNumericLiterals) {
  const auto tokens = lex("42 3.14 1e-3 0x1F 2.5f 10L");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloatLiteral);
  EXPECT_EQ(tokens[2].kind, TokenKind::kFloatLiteral);
  EXPECT_EQ(tokens[3].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[3].text, "0x1F");
  EXPECT_EQ(tokens[4].kind, TokenKind::kFloatLiteral);
  EXPECT_EQ(tokens[5].kind, TokenKind::kIntLiteral);
}

TEST(Lexer, SkipsComments) {
  const auto tokens = lex("a /* block\ncomment */ b // line\nc");
  ASSERT_EQ(tokens.size(), 4u);  // a b c EOF
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(Lexer, CapturesPragmaLines) {
  const auto tokens = lex("#pragma omp parallel for private(i)\nfor(;;);");
  EXPECT_EQ(tokens[0].kind, TokenKind::kPragma);
  EXPECT_EQ(tokens[0].text, "pragma omp parallel for private(i)");
  EXPECT_TRUE(tokens[1].is_keyword("for"));
}

TEST(Lexer, SkipsOtherPreprocessorLines) {
  const auto tokens = lex("#include <stdio.h>\n#define N 100\nint x;");
  EXPECT_TRUE(tokens[0].is_keyword("int"));
}

TEST(Lexer, HandlesLineContinuationInPragma) {
  const auto tokens = lex("#pragma omp parallel \\\n for\nx;");
  EXPECT_EQ(tokens[0].kind, TokenKind::kPragma);
  EXPECT_NE(tokens[0].text.find("for"), std::string::npos);
}

TEST(Lexer, StringAndCharLiterals) {
  const auto tokens = lex(R"(printf("%d\n", 'a');)");
  EXPECT_EQ(tokens[2].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[2].text, "%d\\n");
  EXPECT_EQ(tokens[4].kind, TokenKind::kCharLiteral);
  EXPECT_EQ(tokens[4].text, "a");
}

TEST(Lexer, MaximalMunchOperators) {
  const auto tokens = lex("a <<= b >> c->d");
  EXPECT_TRUE(tokens[1].is_punct("<<="));
  EXPECT_TRUE(tokens[3].is_punct(">>"));
  EXPECT_TRUE(tokens[5].is_punct("->"));
}

TEST(Lexer, RejectsUnterminatedString) {
  EXPECT_THROW(lex("\"never closed"), ParseError);
}

TEST(Lexer, RejectsUnterminatedComment) {
  EXPECT_THROW(lex("/* never closed"), ParseError);
}

TEST(Lexer, TracksLineNumbers) {
  const auto tokens = lex("a\nb\n  c");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 3);
  EXPECT_EQ(tokens[2].column, 3);
}

// --- parser -------------------------------------------------------------------

TEST(Parser, SimpleForLoopShape) {
  const NodePtr unit = parse_snippet("for (i = 0; i < n; i++) a[i] = i;");
  ASSERT_EQ(unit->children.size(), 1u);
  const Node& loop = unit->child(0);
  EXPECT_EQ(loop.kind, NodeKind::kFor);
  ASSERT_EQ(loop.children.size(), 4u);
  EXPECT_EQ(loop.child(0).kind, NodeKind::kAssignment);
  EXPECT_EQ(loop.child(1).kind, NodeKind::kBinaryOp);
  EXPECT_EQ(loop.child(1).text, "<");
  EXPECT_EQ(loop.child(2).kind, NodeKind::kUnaryOp);
  EXPECT_EQ(loop.child(2).text, "p++");
  const Node& body = loop.child(3);
  EXPECT_EQ(body.kind, NodeKind::kExprStmt);
  EXPECT_EQ(body.child(0).kind, NodeKind::kAssignment);
  EXPECT_EQ(body.child(0).child(0).kind, NodeKind::kArrayRef);
}

TEST(Parser, DeclarationInForInit) {
  const NodePtr unit = parse_snippet("for (int i = 0; i < 10; ++i) x += i;");
  const Node& init = unit->child(0).child(0);
  EXPECT_EQ(init.kind, NodeKind::kDecl);
  EXPECT_EQ(init.text, "i");
  EXPECT_EQ(init.aux, "int");
  ASSERT_EQ(init.children.size(), 1u);
  EXPECT_EQ(init.child(0).text, "0");
}

TEST(Parser, OperatorPrecedence) {
  const NodePtr e = parse_expression("a + b * c - d / e");
  // ((a + (b*c)) - (d/e))
  EXPECT_EQ(e->text, "-");
  EXPECT_EQ(e->child(0).text, "+");
  EXPECT_EQ(e->child(0).child(1).text, "*");
  EXPECT_EQ(e->child(1).text, "/");
}

TEST(Parser, AssignmentIsRightAssociative) {
  const NodePtr e = parse_expression("a = b = c");
  EXPECT_EQ(e->kind, NodeKind::kAssignment);
  EXPECT_EQ(e->child(1).kind, NodeKind::kAssignment);
  EXPECT_EQ(e->child(1).child(0).text, "b");
}

TEST(Parser, LogicalPrecedenceBelowComparison) {
  const NodePtr e = parse_expression("a < b && c > d || e == f");
  EXPECT_EQ(e->text, "||");
  EXPECT_EQ(e->child(0).text, "&&");
  EXPECT_EQ(e->child(1).text, "==");
}

TEST(Parser, TernaryExpression) {
  const NodePtr e = parse_expression("x > 0 ? x : -x");
  EXPECT_EQ(e->kind, NodeKind::kTernaryOp);
  EXPECT_EQ(e->child(2).kind, NodeKind::kUnaryOp);
}

TEST(Parser, MultiDimensionalArrayRef) {
  const NodePtr e = parse_expression("b[i][j]");
  EXPECT_EQ(e->kind, NodeKind::kArrayRef);
  EXPECT_EQ(e->child(0).kind, NodeKind::kArrayRef);
  EXPECT_EQ(e->child(0).child(0).text, "b");
  EXPECT_EQ(e->child(1).text, "j");
}

TEST(Parser, FunctionCallWithArguments) {
  const NodePtr e = parse_expression("fmax(a[i], b[i] * 2.0)");
  EXPECT_EQ(e->kind, NodeKind::kFuncCall);
  EXPECT_EQ(e->child(0).text, "fmax");
  EXPECT_EQ(e->child(1).children.size(), 2u);
}

TEST(Parser, MallocCastIdiom) {
  const NodePtr unit =
      parse_snippet("b = (long **) malloc(10 * (sizeof(long *)));");
  const Node& assign = unit->child(0).child(0);
  EXPECT_EQ(assign.child(1).kind, NodeKind::kCast);
  EXPECT_EQ(assign.child(1).text, "long**");
  EXPECT_EQ(assign.child(1).child(0).kind, NodeKind::kFuncCall);
}

TEST(Parser, SizeofExpressionAndType) {
  const NodePtr a = parse_expression("sizeof(x)");
  EXPECT_EQ(a->kind, NodeKind::kSizeof);
  ASSERT_EQ(a->children.size(), 1u);
  const NodePtr b = parse_expression("sizeof(double)");
  EXPECT_EQ(b->kind, NodeKind::kSizeof);
  EXPECT_EQ(b->text, "double");
  EXPECT_TRUE(b->children.empty());
}

TEST(Parser, StructMemberAccess) {
  const NodePtr e = parse_expression("node->next.value");
  EXPECT_EQ(e->kind, NodeKind::kStructRef);
  EXPECT_EQ(e->text, ".");
  EXPECT_EQ(e->child(0).kind, NodeKind::kStructRef);
  EXPECT_EQ(e->child(0).text, "->");
}

TEST(Parser, FunctionDefinition) {
  const NodePtr unit = parse_program(
      "double norm(double *v, int n) { double s = 0; return s; }");
  const Node& fn = unit->child(0);
  EXPECT_EQ(fn.kind, NodeKind::kFuncDef);
  EXPECT_EQ(fn.text, "norm");
  EXPECT_EQ(fn.aux, "double");
  EXPECT_EQ(fn.child(0).children.size(), 2u);
  EXPECT_EQ(fn.child(0).child(0).aux, "double*");
  EXPECT_EQ(fn.child(1).kind, NodeKind::kCompound);
}

TEST(Parser, FunctionPrototype) {
  const NodePtr unit = parse_program("void Calc(int i);");
  const Node& fn = unit->child(0);
  EXPECT_EQ(fn.kind, NodeKind::kFuncDef);
  EXPECT_EQ(fn.child(1).kind, NodeKind::kEmpty);
}

TEST(Parser, ArrayDeclarationWithDims) {
  const NodePtr unit = parse_snippet("double a[100][200];");
  const Node& decl = unit->child(0);
  EXPECT_EQ(decl.kind, NodeKind::kDecl);
  EXPECT_EQ(decl.aux, "double[][]");
  ASSERT_EQ(decl.children.size(), 2u);
  EXPECT_EQ(decl.child(0).text, "100");
}

TEST(Parser, MultiDeclaratorStatement) {
  const NodePtr unit = parse_snippet("int i = 0, j = 1, k;");
  const Node& list = unit->child(0);
  EXPECT_EQ(list.kind, NodeKind::kExprList);
  EXPECT_EQ(list.children.size(), 3u);
  EXPECT_EQ(list.child(1).text, "j");
}

TEST(Parser, PragmaAttachedBeforeLoop) {
  const NodePtr unit = parse_snippet(
      "#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] = i;");
  ASSERT_EQ(unit->children.size(), 2u);
  EXPECT_EQ(unit->child(0).kind, NodeKind::kPragma);
  EXPECT_EQ(unit->child(1).kind, NodeKind::kFor);
}

TEST(Parser, IfElseChains) {
  const NodePtr unit = parse_snippet(
      "if (y % 2) det += a[y]; else det -= a[y];");
  const Node& node = unit->child(0);
  EXPECT_EQ(node.kind, NodeKind::kIf);
  ASSERT_EQ(node.children.size(), 3u);
}

TEST(Parser, WhileAndDoWhile) {
  const NodePtr unit = parse_snippet("while (p) p = next(p); do x--; while (x);");
  EXPECT_EQ(unit->child(0).kind, NodeKind::kWhile);
  EXPECT_EQ(unit->child(1).kind, NodeKind::kDoWhile);
}

TEST(Parser, BreakContinueGotoLabel) {
  const NodePtr unit = parse_snippet(
      "for (;;) { if (a) break; if (b) continue; goto done; }\ndone: x = 1;");
  const Node& body = unit->child(0).child(3);
  EXPECT_EQ(body.child(0).child(1).kind, NodeKind::kBreak);
  EXPECT_EQ(body.child(1).child(1).kind, NodeKind::kContinue);
  EXPECT_EQ(body.child(2).kind, NodeKind::kGoto);
  EXPECT_EQ(unit->child(1).kind, NodeKind::kLabel);
}

TEST(Parser, CommaExpressionInForHeader) {
  const NodePtr unit = parse_snippet("for (i = 0, j = n; i < j; i++, j--) ;");
  const Node& loop = unit->child(0);
  EXPECT_EQ(loop.child(0).kind, NodeKind::kExprList);
  EXPECT_EQ(loop.child(2).kind, NodeKind::kExprList);
}

TEST(Parser, StructDefinition) {
  const NodePtr unit =
      parse_program("struct point { double x; double y; };");
  const Node& def = unit->child(0);
  EXPECT_EQ(def.kind, NodeKind::kDecl);
  EXPECT_EQ(def.aux, "struct-def");
  EXPECT_EQ(def.children.size(), 2u);
}

TEST(Parser, EmptyForHeaderPieces) {
  const NodePtr unit = parse_snippet("for (;;) ;");
  const Node& loop = unit->child(0);
  EXPECT_EQ(loop.child(0).kind, NodeKind::kEmpty);
  EXPECT_EQ(loop.child(1).kind, NodeKind::kEmpty);
  EXPECT_EQ(loop.child(2).kind, NodeKind::kEmpty);
}

TEST(Parser, RejectsGarbage) {
  EXPECT_THROW(parse_snippet("for (i = 0 i < n; i++) ;"), ParseError);
  EXPECT_THROW(parse_snippet("int 3x;"), ParseError);
  EXPECT_THROW(parse_snippet("a = ;"), ParseError);
  EXPECT_THROW(parse_snippet("{ unterminated"), ParseError);
}

TEST(Parser, Paper_Table8_Example3_Parses) {
  // The determinant example from Table 8 of the paper (abridged types).
  const char* code = R"(
    for (y = 0; y < 10; y++) {
      b = (long **) malloc(10 * (sizeof(long *)));
      for (i = 0; i < m; i++)
        b[i] = (long *) malloc((sizeof(long *)) * 10);
      for (int x = 0; x < 10; x++)
        for (int g = 0; g < 10; g++)
          b[x][g] = 0;
      getCofactor(a, b, 0, y, m);
      if (y % 2)
        det += ((-1) * a[0][y]) * detMat(b, m - 1);
      else
        det += a[0][y] * detMat(b, m - 1);
      for (i = 0; i < m; i++)
        free(b[i]);
      free(b);
    }
  )";
  const NodePtr unit = parse_snippet(code);
  EXPECT_EQ(count_kind(*unit, NodeKind::kFor), 5u);
  // getCofactor, detMat x2, free x2, malloc x2.
  EXPECT_EQ(count_kind(*unit, NodeKind::kFuncCall), 7u);
}

// --- printer round-trips --------------------------------------------------------

std::string normalized(const Node& node) { return dfs_lines(node); }

class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, ParsePrintParseIsStable) {
  const NodePtr first = parse_snippet(GetParam());
  const std::string printed = print_source(*first);
  const NodePtr second = parse_snippet(printed);
  EXPECT_EQ(normalized(*first), normalized(*second)) << "printed form:\n" << printed;
}

INSTANTIATE_TEST_SUITE_P(
    Snippets, RoundTrip,
    ::testing::Values(
        "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
        "for (int i = 0; i < len; ++i) { sum += v[i] * v[i]; }",
        "if (fabs(b[i][j] - a[i][j]) > maxdiff) maxdiff = fabs(b[i][j] - a[i][j]);",
        "x = y > 0 ? y : -y;",
        "b = (long **) malloc(10 * (sizeof(long *)));",
        "for (i = 0, j = n - 1; i < j; i++, j--) { t = a[i]; a[i] = a[j]; a[j] = t; }",
        "while (count < 10) { count++; }",
        "do { s += f(s); } while (s < eps);",
        "double norm(double *v, int n) { double s = 0; for (int i = 0; i < n; i++) s += v[i] * v[i]; return s; }",
        "p->next = q->prev;",
        "arr[i][j][k] = i * j + k;",
        "#pragma omp parallel for private(j) reduction(+: sum)\nfor (i = 0; i < n; i++) for (j = 0; j < m; j++) sum += m1[i][j];",
        "fprintf(f, \"%d\\n\", arr[i]);",
        "int i = 0, j = 1;",
        "for (;;) { if (done) break; }",
        "x = (double) total / (double) count;",
        "flag = !flag && (mask | bits) != 0;",
        "a[i] <<= 2;",
        "s = sizeof(double) * n;",
        "v = -x * +y;"));

// --- DFS serialization ------------------------------------------------------------

TEST(Dfs, MatchesPaperTable5Format) {
  const NodePtr unit = parse_snippet("for (i = 0; i < len; i++) a[i] = i;");
  const std::string lines = dfs_lines(*unit);
  EXPECT_NE(lines.find("For:"), std::string::npos);
  EXPECT_NE(lines.find("Assignment: ="), std::string::npos);
  EXPECT_NE(lines.find("ID: i"), std::string::npos);
  EXPECT_NE(lines.find("Constant: int, 0"), std::string::npos);
  EXPECT_NE(lines.find("BinaryOp: <"), std::string::npos);
  EXPECT_NE(lines.find("UnaryOp: p++"), std::string::npos);
  EXPECT_NE(lines.find("ArrayRef:"), std::string::npos);
}

TEST(Dfs, TokensSplitLabelParts) {
  const NodePtr unit = parse_snippet("x = 1;");
  const auto tokens = dfs_tokens(*unit);
  // ExprStmt: Assignment: = ID: x Constant: int 1
  ASSERT_GE(tokens.size(), 7u);
  EXPECT_EQ(tokens[0], "ExprStmt:");
  EXPECT_EQ(tokens[1], "Assignment:");
  EXPECT_EQ(tokens[2], "=");
  EXPECT_EQ(tokens[3], "ID:");
  EXPECT_EQ(tokens[4], "x");
  EXPECT_EQ(tokens[5], "Constant:");
  EXPECT_EQ(tokens[6], "int");
}

TEST(Dfs, DeeperNodesIndentFurther) {
  const NodePtr unit = parse_snippet("for (;;) a = 1;");
  const std::string lines = dfs_lines(*unit);
  EXPECT_NE(lines.find("\n  "), std::string::npos);  // indented children exist
}

// --- pragma parsing -----------------------------------------------------------------

TEST(Pragma, ParsesParallelForWithClauses) {
  const OmpDirective d = parse_omp_pragma(
      "#pragma omp parallel for private(i, j) reduction(+: sum) schedule(dynamic, 4) nowait");
  EXPECT_TRUE(d.parallel);
  EXPECT_TRUE(d.for_loop);
  EXPECT_TRUE(d.is_loop_directive());
  EXPECT_EQ(d.private_vars, (std::vector<std::string>{"i", "j"}));
  ASSERT_EQ(d.reductions.size(), 1u);
  EXPECT_EQ(d.reductions[0], (Reduction{ReductionOp::kAdd, "sum"}));
  EXPECT_EQ(d.schedule, ScheduleKind::kDynamic);
  EXPECT_EQ(d.schedule_chunk, 4);
  EXPECT_TRUE(d.nowait);
}

TEST(Pragma, ParsesWithoutHashPrefix) {
  const OmpDirective d = parse_omp_pragma("pragma omp for schedule(static)");
  EXPECT_FALSE(d.parallel);
  EXPECT_TRUE(d.for_loop);
  EXPECT_EQ(d.schedule, ScheduleKind::kStatic);
}

TEST(Pragma, MaxReduction) {
  const OmpDirective d = parse_omp_pragma("#pragma omp parallel for reduction(max: maxdiff)");
  ASSERT_EQ(d.reductions.size(), 1u);
  EXPECT_EQ(d.reductions[0].op, ReductionOp::kMax);
  EXPECT_EQ(d.reductions[0].variable, "maxdiff");
}

TEST(Pragma, MultipleReductionVariables) {
  const OmpDirective d = parse_omp_pragma("#pragma omp parallel for reduction(*: p, q)");
  ASSERT_EQ(d.reductions.size(), 2u);
  EXPECT_EQ(d.reductions[1].variable, "q");
}

TEST(Pragma, NonLoopDirectives) {
  EXPECT_TRUE(parse_omp_pragma("#pragma omp critical").critical);
  EXPECT_TRUE(parse_omp_pragma("#pragma omp atomic").atomic);
  EXPECT_TRUE(parse_omp_pragma("#pragma omp barrier").barrier);
  EXPECT_FALSE(parse_omp_pragma("#pragma omp parallel").is_loop_directive());
}

TEST(Pragma, UnknownClausePreserved) {
  const OmpDirective d =
      parse_omp_pragma("#pragma omp parallel for ordered default(none)");
  ASSERT_EQ(d.unknown_clauses.size(), 2u);
  EXPECT_EQ(d.unknown_clauses[0], "ordered");
  EXPECT_EQ(d.unknown_clauses[1], "default(none)");
}

TEST(Pragma, RejectsNonOmpPragma) {
  EXPECT_FALSE(is_omp_pragma("pragma once"));
  EXPECT_THROW(parse_omp_pragma("pragma once"), ParseError);
  EXPECT_FALSE(is_omp_pragma("pragma ompx foo"));
}

TEST(Pragma, ToStringRoundTrips) {
  const char* text =
      "#pragma omp parallel for schedule(dynamic, 8) private(i, j) "
      "reduction(+: sum) nowait";
  const OmpDirective d = parse_omp_pragma(text);
  const OmpDirective again = parse_omp_pragma(d.to_string());
  EXPECT_EQ(d, again);
}

TEST(Pragma, CollapseAndNumThreads) {
  const OmpDirective d =
      parse_omp_pragma("#pragma omp parallel for collapse(2) num_threads(8)");
  EXPECT_EQ(d.collapse, 2);
  EXPECT_EQ(d.num_threads, "8");
}

TEST(Pragma, ReductionOpNamesRoundTrip) {
  for (const char* symbol : {"+", "-", "*", "min", "max", "&&", "||", "&", "|", "^"}) {
    EXPECT_EQ(reduction_op_name(reduction_op_from(symbol)), symbol);
  }
  EXPECT_THROW(reduction_op_from("%%"), ParseError);
}

// --- misc AST utilities ----------------------------------------------------------------

TEST(Ast, CloneIsDeepAndEqual) {
  const NodePtr unit = parse_snippet("for (i = 0; i < n; i++) a[i] = f(i);");
  const NodePtr copy = unit->clone();
  EXPECT_EQ(dfs_lines(*unit), dfs_lines(*copy));
  EXPECT_NE(unit->children[0].get(), copy->children[0].get());
}

TEST(Ast, CountKind) {
  const NodePtr unit = parse_snippet("a = b + c * d - e;");
  EXPECT_EQ(count_kind(*unit, NodeKind::kBinaryOp), 3u);
  EXPECT_EQ(count_kind(*unit, NodeKind::kID), 5u);
}

}  // namespace
}  // namespace clpp::frontend
