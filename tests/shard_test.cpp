// Tests for clpp::shard — the sharded fault-tolerant serving stack
// (DESIGN.md §12): frame codec hostility, admission control, the shard
// supervisor's crash-recovery contract ("a crash of one shard loses no
// accepted request"), and the socket listener's survive-bad-input rules.
//
// Crash tests script worker death deterministically through the
// `shard.batch` fault seam (resil::FaultPlan is installed process-wide
// before fork, so every first-generation worker inherits it), or kill a
// live worker with SIGKILL. Both paths must end with every accepted
// request answered by a verdict bitwise-identical to a direct advise()
// call — advice is a pure function of the code text, which is what makes
// replay-on-crash safe in the first place.
//
// Fork discipline: the supervisor forks worker processes, so these tests
// drive everything (submission, pumping, the listener event loop) from the
// gtest main thread and never start helper threads while a (re)spawn can
// happen.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "obs/trace.h"
#include "resil/fault.h"
#include "shard/admission.h"
#include "shard/frame.h"
#include "shard/listener.h"
#include "shard/supervisor.h"
#include "shard/worker.h"
#include "support/json.h"
#include "support/rng.h"
#include "tokenize/representation.h"
#include "tokenize/vocabulary.h"

namespace clpp::shard {
namespace {

using core::Advice;
using core::ParallelAdvisor;

const std::vector<std::string>& snippets() {
  static const std::vector<std::string> list = {
      "for (i = 0; i < n; i++) a[i] = b[i];",
      "for (i = 0; i < n; i++) c[i] = a[i] + b[i];",
      "for (i = 0; i < n; i++) sum += a[i];",
      "for (i = 1; i < n; i++) a[i] = a[i - 1] + 1;",
      "for (i = 0; i < n; i++) { t = a[i] * 0.5; b[i] = t + a[i]; }",
      "for (i = 0; i < n; i++) printf(\"%d\", a[i]);",
      "for (i = 0; i < n; i++) { if (a[i] > 0.5) a[i] = evolve(a[i]); }",
      "for (i = 0; i < n; i++) best = a[i] > best ? a[i] : best;",
  };
  return list;
}

/// Small untrained advisor (identical construction to serve_test: verdict
/// correctness is independent of model quality, and skipping training keeps
/// the crash-recovery suite fast enough for the TSan job).
std::unique_ptr<ParallelAdvisor> tiny_advisor() {
  constexpr std::size_t kMaxLen = 48;
  std::vector<std::vector<std::string>> documents;
  for (const std::string& code : snippets())
    documents.push_back(
        tokenize::tokenize(code, tokenize::Representation::kText));
  tokenize::Vocabulary vocab = tokenize::Vocabulary::build(documents);

  core::PragFormerConfig config;
  config.encoder.vocab_size = vocab.size();
  config.encoder.max_seq = kMaxLen;
  config.encoder.dim = 16;
  config.encoder.heads = 2;
  config.encoder.layers = 1;
  config.encoder.ffn_dim = 32;
  Rng rng(4242);
  auto directive = std::make_unique<core::PragFormer>(config, rng);
  auto private_model = std::make_unique<core::PragFormer>(config, rng);
  auto reduction = std::make_unique<core::PragFormer>(config, rng);
  auto schedule = std::make_unique<core::PragFormer>(config, rng);
  auto advisor = std::make_unique<ParallelAdvisor>(
      std::move(directive), std::move(private_model), std::move(reduction),
      std::move(vocab), tokenize::Representation::kText, kMaxLen);
  advisor->set_schedule_model(std::move(schedule));
  return advisor;
}

std::string request_payload(std::int64_t id, const std::string& code) {
  Json request = Json::object();
  request["id"] = id;
  request["code"] = code;
  return request.dump();
}

/// Asserts a response payload is the verdict a direct advise() produces —
/// bitwise: Json serializes doubles at round-trip precision, so equality of
/// the parsed doubles proves the float verdicts match exactly.
void expect_verdict_matches(const std::string& payload, const Advice& expect) {
  const Json body = Json::parse(payload);
  ASSERT_FALSE(body.contains("error")) << payload;
  EXPECT_EQ(body.at("p_directive").as_double(),
            static_cast<double>(expect.p_directive))
      << payload;
  ASSERT_EQ(body.at("needs_directive").as_bool(), expect.needs_directive);
  if (expect.needs_directive) {
    EXPECT_EQ(body.at("p_private").as_double(),
              static_cast<double>(expect.p_private));
    EXPECT_EQ(body.at("p_reduction").as_double(),
              static_cast<double>(expect.p_reduction));
    EXPECT_EQ(body.at("suggestion").as_string(), expect.suggestion);
  }
}

// ------------------------------------------------------------- frame codec

TEST(FrameCodec, RoundTripsThroughArbitrarySplits) {
  Frame frame;
  frame.payload = R"({"id":7,"code":"for (i = 0; i < n; i++) a[i] = 0;"})";
  frame.deadline_ms = 1234;
  const std::string wire = encode_frame(frame);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + frame.payload.size());

  // Feed the wire bytes in every possible two-chunk split: the decoder
  // must reassemble regardless of where the kernel happened to cut reads.
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(wire.data(), cut);
    Frame out;
    std::string error;
    if (cut < wire.size()) {
      ASSERT_EQ(decoder.next(&out, &error), FrameDecoder::Result::kNeedMore);
      decoder.feed(wire.data() + cut, wire.size() - cut);
    }
    ASSERT_EQ(decoder.next(&out, &error), FrameDecoder::Result::kFrame);
    EXPECT_EQ(out.payload, frame.payload);
    EXPECT_EQ(out.deadline_ms, frame.deadline_ms);
    EXPECT_EQ(decoder.next(&out, &error), FrameDecoder::Result::kNeedMore);
  }
}

TEST(FrameCodec, DecodesBackToBackFramesFromOneFeed) {
  Frame a, b;
  a.payload = R"({"id":1})";
  b.payload = R"({"id":2,"code":"x"})";
  b.deadline_ms = 9;
  const std::string wire = encode_frame(a) + encode_frame(b);
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  Frame out;
  std::string error;
  ASSERT_EQ(decoder.next(&out, &error), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.payload, a.payload);
  ASSERT_EQ(decoder.next(&out, &error), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.payload, b.payload);
  EXPECT_EQ(out.deadline_ms, 9u);
  EXPECT_EQ(decoder.next(&out, &error), FrameDecoder::Result::kNeedMore);
}

TEST(FrameCodec, TruncatedHeaderNeedsMore) {
  FrameDecoder decoder;
  const char partial[5] = {0x10, 0x00, 0x00, 0x00, 0x00};
  decoder.feed(partial, sizeof partial);
  Frame out;
  std::string error;
  EXPECT_EQ(decoder.next(&out, &error), FrameDecoder::Result::kNeedMore);
}

TEST(FrameCodec, OversizedAndZeroLengthPrefixesAreBadFrames) {
  const std::uint32_t bad_lengths[] = {
      0, static_cast<std::uint32_t>(kMaxFramePayload) + 1, 0xffffffffu};
  for (const std::uint32_t bad_len : bad_lengths) {
    FrameDecoder decoder;
    char header[kFrameHeaderBytes] = {};
    std::memcpy(header, &bad_len, 4);  // little-endian test hosts only
    decoder.feed(header, sizeof header);
    Frame out;
    std::string error;
    EXPECT_EQ(decoder.next(&out, &error), FrameDecoder::Result::kBadFrame)
        << bad_len;
    EXPECT_NE(error.find("bad frame length"), std::string::npos) << error;
    // The decoder reset itself: a valid frame fed afterwards decodes.
    Frame good;
    good.payload = "{}";
    const std::string wire = encode_frame(good);
    decoder.feed(wire.data(), wire.size());
    EXPECT_EQ(decoder.next(&out, &error), FrameDecoder::Result::kFrame);
    EXPECT_EQ(out.payload, "{}");
  }
}

TEST(FrameCodec, FdReaderReportsCleanEofTruncationAndMidFrameCut) {
  {  // clean EOF before any byte
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ::close(fds[1]);
    Frame out;
    std::string error;
    EXPECT_EQ(read_frame_fd(fds[0], &out, &error), ReadStatus::kEof);
    ::close(fds[0]);
  }
  {  // EOF inside the length prefix
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const char partial[3] = {0x10, 0x00, 0x00};
    ASSERT_EQ(::write(fds[1], partial, sizeof partial), 3);
    ::close(fds[1]);
    Frame out;
    std::string error;
    EXPECT_EQ(read_frame_fd(fds[0], &out, &error), ReadStatus::kError);
    EXPECT_NE(error.find("truncated frame header"), std::string::npos)
        << error;
    ::close(fds[0]);
  }
  {  // header promises 100 bytes, stream dies after 10
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    Frame promise;
    promise.payload.assign(100, 'x');
    const std::string wire = encode_frame(promise);
    ASSERT_EQ(::write(fds[1], wire.data(), kFrameHeaderBytes + 10),
              static_cast<ssize_t>(kFrameHeaderBytes + 10));
    ::close(fds[1]);
    Frame out;
    std::string error;
    EXPECT_EQ(read_frame_fd(fds[0], &out, &error), ReadStatus::kError);
    EXPECT_NE(error.find("EOF mid-frame"), std::string::npos) << error;
    ::close(fds[0]);
  }
}

TEST(FrameCodec, SurvivesRandomByteFlips) {
  // Same adversary as checkpoint_test's flipped-byte corruption pass: take
  // a valid multi-frame stream, flip one random byte, and require the
  // decoder to classify every byte without crashing — each frame either
  // decodes, waits for more input, or is rejected as a bad frame.
  std::vector<Frame> frames;
  std::string wire;
  for (int i = 0; i < 6; ++i) {
    Frame frame;
    frame.payload = request_payload(i, snippets()[i % snippets().size()]);
    frame.deadline_ms = static_cast<std::uint32_t>(i);
    wire += encode_frame(frame);
    frames.push_back(std::move(frame));
  }
  Rng rng(20230807);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupt = wire;
    const std::size_t at = rng.index(corrupt.size());
    corrupt[at] = static_cast<char>(corrupt[at] ^ (1 << rng.index(8)));
    FrameDecoder decoder;
    decoder.feed(corrupt.data(), corrupt.size());
    Frame out;
    std::string error;
    std::size_t decoded = 0;
    for (;;) {
      const FrameDecoder::Result result = decoder.next(&out, &error);
      if (result == FrameDecoder::Result::kFrame) {
        ++decoded;
        ASSERT_LE(out.payload.size(), kMaxFramePayload);
        ASSERT_LE(decoded, frames.size() + 1) << "runaway decode";
        continue;
      }
      if (result == FrameDecoder::Result::kBadFrame) {
        EXPECT_FALSE(error.empty());
      }
      break;
    }
  }
}

// --------------------------------------------------------------- admission

TEST(TokenBucketTest, BurstThenRefill) {
  const std::uint64_t t0 = 1'000'000'000ULL;
  TokenBucket bucket(/*rate_per_s=*/1000.0, /*burst=*/2.0, t0);
  EXPECT_TRUE(bucket.try_take(t0));
  EXPECT_TRUE(bucket.try_take(t0));
  EXPECT_FALSE(bucket.try_take(t0));
  const std::uint64_t wait = bucket.retry_after_ms(t0);
  EXPECT_GE(wait, 1u);
  // One refill interval later (1ms at 1000 rps) a token is back.
  const std::uint64_t t1 = t0 + 1'000'000ULL;
  EXPECT_EQ(bucket.retry_after_ms(t1), 0u);
  EXPECT_TRUE(bucket.try_take(t1));
  EXPECT_FALSE(bucket.try_take(t1));
}

TEST(TokenBucketTest, ZeroRateNeverRefills) {
  const std::uint64_t t0 = 5'000ULL;
  TokenBucket bucket(/*rate_per_s=*/0.0, /*burst=*/1.0, t0);
  EXPECT_TRUE(bucket.try_take(t0));
  EXPECT_FALSE(bucket.try_take(t0 + 60'000'000'000ULL));
  EXPECT_GT(bucket.retry_after_ms(t0 + 60'000'000'000ULL), 0u);
}

TEST(AdmissionTest, PerClientQuotasAreIndependent) {
  AdmissionConfig config;
  config.quota_rps = 1.0;
  config.quota_burst = 2.0;
  AdmissionController admission(config);
  const std::uint64_t now = 42'000'000'000ULL;
  EXPECT_EQ(admission.admit("alice", 0, now, 0).verdict, Admit::kAccept);
  EXPECT_EQ(admission.admit("alice", 0, now, 0).verdict, Admit::kAccept);
  const AdmissionDecision shed = admission.admit("alice", 0, now, 0);
  EXPECT_EQ(shed.verdict, Admit::kOverQuota);
  EXPECT_GT(shed.retry_after_ms, 0u);
  // A different client id has its own untouched bucket.
  EXPECT_EQ(admission.admit("bob", 0, now, 0).verdict, Admit::kAccept);
  EXPECT_EQ(admission.stats().accepted, 3u);
  EXPECT_EQ(admission.stats().over_quota, 1u);
}

TEST(AdmissionTest, InflightCeilingShedsBeforeQuota) {
  AdmissionConfig config;
  config.max_inflight = 4;
  AdmissionController admission(config);
  const std::uint64_t now = 7'000'000'000ULL;
  EXPECT_EQ(admission.admit("c", 0, now, 3).verdict, Admit::kAccept);
  const AdmissionDecision shed = admission.admit("c", 0, now, 4);
  EXPECT_EQ(shed.verdict, Admit::kOverloaded);
  EXPECT_GT(shed.retry_after_ms, 0u);
  EXPECT_EQ(admission.stats().overloaded, 1u);
}

TEST(AdmissionTest, DeadlineStampingUsesRequestThenDefault) {
  AdmissionConfig config;
  config.default_deadline_ms = 100;
  AdmissionController admission(config);
  const std::uint64_t now = 9'000'000'000ULL;
  // Frame-carried budget wins.
  EXPECT_EQ(admission.admit("c", 250, now, 0).deadline_ns,
            now + 250'000'000ULL);
  // No budget in the frame: the configured default applies.
  EXPECT_EQ(admission.admit("c", 0, now, 0).deadline_ns,
            now + 100'000'000ULL);
  // No default either: no deadline at all.
  AdmissionController no_default{AdmissionConfig{}};
  EXPECT_EQ(no_default.admit("c", 0, now, 0).deadline_ns, 0u);
}

// -------------------------------------------------------------- supervisor

/// Pumps until every ticket in `expected` has a response or `budget_ms`
/// elapses. Returns the responses collected so far.
void pump_until_done(ShardSupervisor& supervisor, std::size_t expected,
                     const std::map<std::uint64_t, std::string>& responses,
                     int budget_ms = 60000) {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  while (responses.size() < expected &&
         std::chrono::steady_clock::now() < give_up)
    supervisor.pump(50);
}

TEST(ShardSupervisorTest, ServesAndDrainsWithoutFaults) {
  const auto advisor = tiny_advisor();
  SupervisorConfig config;
  config.shards = 2;
  config.serve.workers = 1;
  ShardSupervisor supervisor(*advisor, config);
  std::map<std::uint64_t, std::string> responses;
  supervisor.set_on_response([&](std::uint64_t ticket, std::string payload) {
    responses[ticket] = std::move(payload);
  });
  supervisor.start();
  EXPECT_EQ(supervisor.live_shards(), 2u);

  std::map<std::uint64_t, std::string> code_of;
  std::int64_t id = 0;
  for (const std::string& code : snippets()) {
    std::uint64_t ticket = 0;
    const AdmissionDecision decision =
        supervisor.submit(request_payload(++id, code), "t", 0, &ticket);
    ASSERT_EQ(decision.verdict, Admit::kAccept);
    code_of[ticket] = code;
  }
  pump_until_done(supervisor, code_of.size(), responses);
  ASSERT_EQ(responses.size(), code_of.size());
  for (const auto& [ticket, payload] : responses)
    expect_verdict_matches(payload, advisor->advise(code_of.at(ticket)));

  supervisor.drain();
  EXPECT_EQ(supervisor.live_shards(), 0u);
  EXPECT_EQ(supervisor.inflight(), 0u);
  const Json stats = supervisor.stats_json();
  EXPECT_EQ(stats.at("schema").as_string(), "clpp.shard_stats.v1");
  EXPECT_EQ(stats.at("deaths").as_int(), 0);
  EXPECT_EQ(stats.at("admission").at("accepted").as_int(),
            static_cast<std::int64_t>(code_of.size()));
}

TEST(ShardSupervisorTest, CrashedShardLosesNoAcceptedRequest) {
  // The headline robustness contract: arm the shard.batch seam so every
  // first-generation worker dies abruptly on its SECOND burst — after the
  // supervisor accepted (and is accountable for) the requests it was
  // carrying. All three shards crash, their pending work replays on
  // whatever is alive (or parks in the backlog until a restart), and every
  // accepted request still ends in a verdict bitwise-identical to a direct
  // advise() call.
  const auto advisor = tiny_advisor();
  resil::set_fault_plan(resil::FaultPlan::parse("shard.batch:2"));
  SupervisorConfig config;
  config.shards = 3;
  config.serve.workers = 1;
  config.serve.max_batch = 4;  // several bursts per shard → burst 2 exists
  config.flight_dir = ::testing::TempDir();
  config.restart.base_delay_ms = 5.0;
  config.restart.max_delay_ms = 50.0;
  ShardSupervisor supervisor(*advisor, config);
  std::map<std::uint64_t, std::string> responses;
  supervisor.set_on_response([&](std::uint64_t ticket, std::string payload) {
    responses[ticket] = std::move(payload);
  });
  supervisor.start();
  // The children inherited the plan at fork; the parent never hits the
  // seam, but drop its copy so nothing else in-process can trip it.
  resil::clear_fault_plan();

  std::map<std::uint64_t, std::string> code_of;
  std::int64_t id = 0;
  for (int round = 0; round < 6; ++round) {
    for (const std::string& code : snippets()) {
      std::uint64_t ticket = 0;
      const AdmissionDecision decision =
          supervisor.submit(request_payload(++id, code), "t", 0, &ticket);
      ASSERT_EQ(decision.verdict, Admit::kAccept);
      code_of[ticket] = code;
    }
  }
  pump_until_done(supervisor, code_of.size(), responses);
  ASSERT_EQ(responses.size(), code_of.size()) << "lost accepted requests";
  for (const auto& [ticket, payload] : responses)
    expect_verdict_matches(payload, advisor->advise(code_of.at(ticket)));

  const Json stats = supervisor.stats_json();
  // Every gen-1 worker inherited the plan, so all three died...
  EXPECT_EQ(stats.at("deaths").as_int(), 3);
  // ...dumped flight forensics on the way down...
  EXPECT_EQ(stats.at("flight_dumps").as_int(), 3);
  // ...had their orphaned requests replayed...
  EXPECT_GT(stats.at("redispatched").as_int(), 0);
  // ...and came back (restarted generations cleared the inherited plan).
  std::int64_t restarts = 0;
  for (const Json& row : stats.at("per_shard").items()) {
    restarts += row.at("restarts").as_int();
    EXPECT_EQ(row.at("faults").as_int(), 1);
    EXPECT_FALSE(row.at("retired").as_bool());
  }
  EXPECT_EQ(restarts, 3);
  EXPECT_EQ(stats.at("unavailable").as_int(), 0);
  supervisor.drain();
}

TEST(ShardSupervisorTest, SigkilledShardRequestsAreReplayed) {
  const auto advisor = tiny_advisor();
  SupervisorConfig config;
  config.shards = 2;
  config.serve.workers = 1;
  config.serve.max_batch = 4;
  config.restart.base_delay_ms = 5.0;
  ShardSupervisor supervisor(*advisor, config);
  std::map<std::uint64_t, std::string> responses;
  supervisor.set_on_response([&](std::uint64_t ticket, std::string payload) {
    responses[ticket] = std::move(payload);
  });
  supervisor.start();

  std::map<std::uint64_t, std::string> code_of;
  std::int64_t id = 0;
  for (int round = 0; round < 4; ++round) {
    for (const std::string& code : snippets()) {
      std::uint64_t ticket = 0;
      supervisor.submit(request_payload(++id, code), "t", 0, &ticket);
      code_of[ticket] = code;
    }
  }
  // Kill shard 0 while its dispatches are (at most partially) answered —
  // the supervisor must notice via EOF/waitpid and replay on shard 1.
  const pid_t victim = supervisor.shard_pid(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  pump_until_done(supervisor, code_of.size(), responses);
  ASSERT_EQ(responses.size(), code_of.size()) << "lost accepted requests";
  for (const auto& [ticket, payload] : responses)
    expect_verdict_matches(payload, advisor->advise(code_of.at(ticket)));
  const Json stats = supervisor.stats_json();
  EXPECT_GE(stats.at("deaths").as_int(), 1);
  supervisor.drain();
}

TEST(ShardSupervisorTest, RetiresShardAfterRestartBudgetExhausts) {
  // One shard, a plan that kills EVERY generation's first burst… except
  // restarts clear the inherited plan, so to exhaust the budget we instead
  // SIGKILL the worker repeatedly and cap max_attempts low.
  const auto advisor = tiny_advisor();
  SupervisorConfig config;
  config.shards = 1;
  config.serve.workers = 1;
  config.restart.max_attempts = 2;  // one restart, then retire
  config.restart.base_delay_ms = 1.0;
  config.restart.max_delay_ms = 5.0;
  ShardSupervisor supervisor(*advisor, config);
  std::map<std::uint64_t, std::string> responses;
  supervisor.set_on_response([&](std::uint64_t ticket, std::string payload) {
    responses[ticket] = std::move(payload);
  });
  supervisor.start();

  for (int generation = 0; generation < 2; ++generation) {
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    pid_t pid = -1;
    while ((pid = supervisor.shard_pid(0)) <= 0 &&
           std::chrono::steady_clock::now() < give_up)
      supervisor.pump(20);
    if (pid <= 0) break;  // already retired
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    supervisor.pump(50);
  }
  // Let any last scheduled restart play out, then check the terminal state.
  const auto settle =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < settle &&
         supervisor.next_restart_ms() >= 0)
    supervisor.pump(20);
  supervisor.pump(20);
  const Json stats = supervisor.stats_json();
  EXPECT_TRUE(stats.at("per_shard").at(0).at("retired").as_bool())
      << stats.dump();
  // With every shard retired, new submissions still get *answers* (the
  // unavailable error), never silence.
  std::uint64_t ticket = 0;
  const AdmissionDecision decision =
      supervisor.submit(request_payload(99, snippets()[0]), "t", 0, &ticket);
  EXPECT_EQ(decision.verdict, Admit::kAccept);
  ASSERT_TRUE(responses.count(ticket));
  EXPECT_EQ(Json::parse(responses.at(ticket)).get_string("error", ""),
            "unavailable");
  supervisor.drain();
}

// ---------------------------------------------------------------- listener

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Turns the listener's event loop until a frame is readable on `fd`, then
/// reads it. The test thread plays both client and server, so the client
/// never blocks without first giving the listener a turn.
Frame await_frame(SocketListener& listener, int fd, int max_turns = 2000) {
  for (int turn = 0; turn < max_turns; ++turn) {
    listener.poll_once(10);
    struct pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 0) > 0) {
      Frame reply;
      std::string error;
      EXPECT_EQ(read_frame_fd(fd, &reply, &error), ReadStatus::kFrame)
          << error;
      return reply;
    }
  }
  ADD_FAILURE() << "no frame arrived";
  return {};
}

Frame roundtrip(SocketListener& listener, int fd, const std::string& payload,
                std::uint32_t deadline_ms = 0) {
  Frame frame;
  frame.payload = payload;
  frame.deadline_ms = deadline_ms;
  EXPECT_TRUE(write_frame_fd(fd, frame));
  return await_frame(listener, fd);
}

struct ListenerHarness {
  explicit ListenerHarness(const ParallelAdvisor& advisor,
                           SupervisorConfig config = make_config())
      : supervisor(advisor, config) {
    listener =
        std::make_unique<SocketListener>(supervisor, ListenerConfig{});
    // Order matters: the listen fd must be registered for child-side close
    // before the first fork.
    listener->start();
    supervisor.start();
  }
  ~ListenerHarness() { supervisor.drain(); }

  static SupervisorConfig make_config() {
    SupervisorConfig config;
    config.shards = 2;
    config.serve.workers = 1;
    return config;
  }

  ShardSupervisor supervisor;
  std::unique_ptr<SocketListener> listener;
};

TEST(SocketListenerTest, ServesKeepAliveFramedRequests) {
  const auto advisor = tiny_advisor();
  ListenerHarness harness(*advisor);
  const int fd = connect_loopback(harness.listener->port());
  ASSERT_GE(fd, 0);
  // Two requests on one connection: keep-alive works and ids round-trip.
  for (int i = 1; i <= 2; ++i) {
    const std::string code = snippets()[i];
    const Frame reply =
        roundtrip(*harness.listener, fd, request_payload(i, code));
    const Json body = Json::parse(reply.payload);
    EXPECT_EQ(body.get_int("id", -1), i);
    expect_verdict_matches(reply.payload, advisor->advise(code));
  }
  ::close(fd);
}

TEST(SocketListenerTest, StatsVerbReportsShardsAndListener) {
  const auto advisor = tiny_advisor();
  ListenerHarness harness(*advisor);
  const int fd = connect_loopback(harness.listener->port());
  ASSERT_GE(fd, 0);
  const Frame reply =
      roundtrip(*harness.listener, fd, R"({"id":5,"cmd":"stats"})");
  const Json body = Json::parse(reply.payload);
  EXPECT_EQ(body.get_int("id", -1), 5);
  const Json& stats = body.at("stats");
  EXPECT_EQ(stats.at("schema").as_string(), "clpp.shard_stats.v1");
  EXPECT_EQ(stats.at("live").as_int(), 2);
  EXPECT_EQ(stats.at("per_shard").size(), 2u);
  EXPECT_GE(stats.at("listener").at("active_conns").as_int(), 1);
  ::close(fd);
}

TEST(SocketListenerTest, MalformedPayloadGetsErrorAndConnectionSurvives) {
  const auto advisor = tiny_advisor();
  ListenerHarness harness(*advisor);
  const int fd = connect_loopback(harness.listener->port());
  ASSERT_GE(fd, 0);
  // Intact framing, hostile payload: one error response, connection lives.
  const Frame error_reply =
      roundtrip(*harness.listener, fd, "this is not json");
  EXPECT_NE(Json::parse(error_reply.payload).get_string("error", "").find(
                "bad_request"),
            std::string::npos);
  // The SAME connection still serves a valid request afterwards.
  const Frame ok =
      roundtrip(*harness.listener, fd, request_payload(2, snippets()[0]));
  expect_verdict_matches(ok.payload, advisor->advise(snippets()[0]));
  ::close(fd);
}

TEST(SocketListenerTest, GarbageLengthPrefixClosesOnlyThatConnection) {
  const auto advisor = tiny_advisor();
  ListenerHarness harness(*advisor);
  const int bad_fd = connect_loopback(harness.listener->port());
  ASSERT_GE(bad_fd, 0);
  // 8 bytes of 0xff: a length prefix beyond the cap. The stream cannot
  // resync, so the listener answers once and closes only this connection.
  const char garbage[8] = {'\xff', '\xff', '\xff', '\xff',
                           '\xff', '\xff', '\xff', '\xff'};
  ASSERT_EQ(::write(bad_fd, garbage, sizeof garbage), 8);
  const Frame error_reply = await_frame(*harness.listener, bad_fd);
  EXPECT_NE(Json::parse(error_reply.payload)
                .get_string("error", "")
                .find("bad_frame"),
            std::string::npos);
  // The next read sees EOF: the server hung up on us (and only us).
  for (int turn = 0; turn < 100; ++turn) {
    harness.listener->poll_once(10);
    struct pollfd pfd{bad_fd, POLLIN, 0};
    if (::poll(&pfd, 1, 0) > 0) break;
  }
  Frame out;
  std::string error;
  EXPECT_EQ(read_frame_fd(bad_fd, &out, &error), ReadStatus::kEof);
  ::close(bad_fd);

  const int good_fd = connect_loopback(harness.listener->port());
  ASSERT_GE(good_fd, 0);
  const Frame ok = roundtrip(*harness.listener, good_fd,
                             request_payload(1, snippets()[1]));
  expect_verdict_matches(ok.payload, advisor->advise(snippets()[1]));
  ::close(good_fd);
}

TEST(SocketListenerTest, PipelinedFramesFromDeadPeerDontCorruptTheLoop) {
  // Regression: read_ready used to hold a Connection reference across
  // handle_frame. A peer that pipelines several malformed-payload frames
  // and hangs up makes the reply writes fail mid-drain (EPIPE), which
  // closes and erases the Connection while frames are still queued in its
  // decoder — the old code then called next() on the dangling reference.
  const auto advisor = tiny_advisor();
  ListenerHarness harness(*advisor);
  const int fd = connect_loopback(harness.listener->port());
  ASSERT_GE(fd, 0);
  Frame frame;
  frame.payload = "not json";
  std::string wire;
  for (int i = 0; i < 6; ++i) wire += encode_frame(frame);
  ASSERT_EQ(::write(fd, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  ::close(fd);
  for (int turn = 0; turn < 50; ++turn) harness.listener->poll_once(10);
  // The event loop survived and a fresh connection still serves.
  const int good_fd = connect_loopback(harness.listener->port());
  ASSERT_GE(good_fd, 0);
  const Frame ok = roundtrip(*harness.listener, good_fd,
                             request_payload(1, snippets()[0]));
  expect_verdict_matches(ok.payload, advisor->advise(snippets()[0]));
  ::close(good_fd);
}

TEST(SocketListenerTest, SynchronousCompletionStillAnswersTheClient) {
  // Regression: the ticket->connection mapping used to be registered after
  // submit() returned, but with every shard retired submit completes
  // synchronously — the "unavailable" reply was then dropped as an orphan
  // and the client hung forever, violating the "every accepted request
  // gets an answer" contract.
  const auto advisor = tiny_advisor();
  SupervisorConfig config = ListenerHarness::make_config();
  config.shards = 1;
  config.restart.max_attempts = 1;  // first death retires the only shard
  ListenerHarness harness(*advisor, config);
  const pid_t victim = harness.supervisor.shard_pid(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (harness.supervisor.live_shards() > 0 &&
         std::chrono::steady_clock::now() < give_up)
    harness.listener->poll_once(10);
  ASSERT_EQ(harness.supervisor.live_shards(), 0u);

  const int fd = connect_loopback(harness.listener->port());
  ASSERT_GE(fd, 0);
  const Frame reply =
      roundtrip(*harness.listener, fd, request_payload(7, snippets()[0]));
  const Json body = Json::parse(reply.payload);
  EXPECT_EQ(body.get_string("error", ""), "unavailable");
  EXPECT_EQ(body.get_int("id", -1), 7);
  ::close(fd);
}

TEST(SocketListenerTest, CachedSnippetsAnswerQuotaExhaustedClients) {
  // The front-end result cache sits BEFORE admission (DESIGN.md §13): a
  // client that has burned its whole token budget still gets answers for
  // snippets the cache already holds — hits cost no inference, so they
  // consume no quota — while fresh snippets from the same client shed.
  const auto advisor = tiny_advisor();
  SupervisorConfig config = ListenerHarness::make_config();
  config.admission.quota_rps = 0.001;  // effectively no refill in-test
  config.admission.quota_burst = 2.0;
  config.cache.max_entries = 64;
  ListenerHarness harness(*advisor, config);
  const int fd = connect_loopback(harness.listener->port());
  ASSERT_GE(fd, 0);
  auto with_client = [](std::int64_t id, const std::string& code) {
    Json request = Json::object();
    request["id"] = id;
    request["code"] = code;
    request["client"] = "greedy";
    return request.dump();
  };
  // Both tokens go on two distinct snippets; their responses populate the
  // cache on the way back to the client.
  for (int i = 0; i < 2; ++i) {
    const Frame reply = roundtrip(*harness.listener, fd,
                                  with_client(i + 1, snippets()[i]));
    const Json body = Json::parse(reply.payload);
    EXPECT_FALSE(body.contains("error")) << reply.payload;
    EXPECT_FALSE(body.get_bool("cached", false)) << reply.payload;
  }
  // Quota exhausted: repeats of the cached snippets are still answered —
  // flagged cached, with the requester's own id and the identical verdict.
  for (int i = 0; i < 2; ++i) {
    const Frame reply = roundtrip(*harness.listener, fd,
                                  with_client(10 + i, snippets()[i]));
    const Json body = Json::parse(reply.payload);
    EXPECT_EQ(body.get_int("id", -1), 10 + i);
    EXPECT_TRUE(body.get_bool("cached", false)) << reply.payload;
    expect_verdict_matches(reply.payload, advisor->advise(snippets()[i]));
  }
  // A fresh snippet from the same client still sheds on quota.
  const Frame shed =
      roundtrip(*harness.listener, fd, with_client(20, snippets()[3]));
  const Json body = Json::parse(shed.payload);
  EXPECT_EQ(body.get_string("error", ""), "overloaded");
  EXPECT_EQ(body.get_string("reason", ""), "quota");
  ::close(fd);
}

TEST(SocketListenerTest, QuotaShedsWithRetryAfterHint) {
  const auto advisor = tiny_advisor();
  SupervisorConfig config = ListenerHarness::make_config();
  config.admission.quota_rps = 0.001;  // effectively no refill in-test
  config.admission.quota_burst = 2.0;
  ListenerHarness harness(*advisor, config);
  const int fd = connect_loopback(harness.listener->port());
  ASSERT_GE(fd, 0);
  // The payload's "client" field keys the bucket: two accepted, third shed.
  auto with_client = [](std::int64_t id, const std::string& code) {
    Json request = Json::object();
    request["id"] = id;
    request["code"] = code;
    request["client"] = "greedy";
    return request.dump();
  };
  for (int i = 1; i <= 2; ++i) {
    const Frame reply = roundtrip(*harness.listener, fd,
                                  with_client(i, snippets()[i]));
    EXPECT_FALSE(Json::parse(reply.payload).contains("error"))
        << reply.payload;
  }
  const Frame shed =
      roundtrip(*harness.listener, fd, with_client(3, snippets()[3]));
  const Json body = Json::parse(shed.payload);
  EXPECT_EQ(body.get_string("error", ""), "overloaded");
  EXPECT_EQ(body.get_string("reason", ""), "quota");
  EXPECT_GT(body.get_int("retry_after_ms", 0), 0);
  ::close(fd);
}

}  // namespace
}  // namespace clpp::shard
