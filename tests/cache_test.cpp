// clpp::cache — digest canonicalization, LRU bounds/eviction order, and
// concurrent hammering (the latter is what the TSan `cache` label exists
// for: get() splices the LRU list under the same lock put() evicts under).
#include "cache/cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cache/digest.h"

namespace clpp::cache {
namespace {

CacheConfig tiny_config(std::size_t entries, std::size_t lock_shards = 1,
                        std::size_t max_bytes = 0) {
  CacheConfig config;
  config.max_entries = entries;
  config.max_bytes = max_bytes;
  config.lock_shards = lock_shards;
  return config;
}

// ----------------------------------------------------------------- digest

TEST(SnippetDigest, WhitespaceRunsDoNotChangeTheDigest) {
  const std::uint64_t canonical =
      snippet_digest("for (i = 0; i < n; i++) a[i] = b[i];");
  EXPECT_EQ(snippet_digest("for (i = 0; i < n; i++)  a[i]  =  b[i];"),
            canonical);
  EXPECT_EQ(snippet_digest("\n  for (i = 0; i < n; i++)\n\ta[i] = b[i];\n"),
            canonical);
  // Token-changing edits must change the digest.
  EXPECT_NE(snippet_digest("for (i = 0; i < n; i++) a[i] = b[i] ;"),
            canonical);
  EXPECT_NE(snippet_digest("for (i = 0; i < n; i++) a[i] = c[i];"),
            canonical);
}

TEST(SnippetDigest, NeverReturnsTheReservedZero) {
  EXPECT_NE(snippet_digest(""), 0u);
  EXPECT_NE(snippet_digest("   \n\t  "), 0u);
}

TEST(RendezvousScore, DistributesAndDiscriminates) {
  // Different slots must rank differently for almost any key, or HRW
  // routing would collapse onto one shard.
  std::set<std::uint64_t> winners;
  for (std::uint64_t key = 1; key <= 64; ++key) {
    std::uint64_t best_slot = 0;
    std::uint64_t best_score = 0;
    for (std::uint64_t slot = 0; slot < 4; ++slot) {
      const std::uint64_t score = rendezvous_score(key, slot);
      if (score > best_score) {
        best_score = score;
        best_slot = slot;
      }
    }
    winners.insert(best_slot);
  }
  // 64 keys over 4 slots: every slot should win at least once.
  EXPECT_EQ(winners.size(), 4u);
}

// -------------------------------------------------------------------- LRU

TEST(ShardedLruCache, DisabledCacheMissesAndIgnoresPuts) {
  ShardedLruCache<int> cache("t", tiny_config(0));
  cache.put(1, 10, 8);
  int out = 0;
  EXPECT_FALSE(cache.get(1, &out));
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ShardedLruCache, EvictsLeastRecentlyUsedFirst) {
  // One lock shard so the whole capacity is a single LRU order.
  ShardedLruCache<int> cache("t", tiny_config(3));
  cache.put(1, 10, 1);
  cache.put(2, 20, 1);
  cache.put(3, 30, 1);
  // Touch 1: it becomes most-recent, so inserting 4 must evict 2.
  int out = 0;
  ASSERT_TRUE(cache.get(1, &out));
  EXPECT_EQ(out, 10);
  cache.put(4, 40, 1);
  EXPECT_FALSE(cache.get(2, &out));
  EXPECT_TRUE(cache.get(1, &out));
  EXPECT_TRUE(cache.get(3, &out));
  EXPECT_TRUE(cache.get(4, &out));
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(ShardedLruCache, EntryCapacityHoldsAcrossManyInserts) {
  ShardedLruCache<int> cache("t", tiny_config(8, /*lock_shards=*/4));
  for (std::uint64_t key = 1; key <= 100; ++key)
    cache.put(key, static_cast<int>(key), 1);
  const CacheStats stats = cache.stats();
  // Ceil-divided budgets: 4 lock shards x 2 entries each.
  EXPECT_LE(stats.entries, 8u);
  EXPECT_EQ(stats.insertions, 100u);
  EXPECT_EQ(stats.evictions, 100u - stats.entries);
}

TEST(ShardedLruCache, ByteBudgetEvictsButKeepsAtLeastOneEntry) {
  ShardedLruCache<std::string> cache(
      "t", tiny_config(100, /*lock_shards=*/1, /*max_bytes=*/64));
  cache.put(1, "a", 40);
  cache.put(2, "b", 40);  // 80 > 64: evicts key 1
  std::string out;
  EXPECT_FALSE(cache.get(1, &out));
  EXPECT_TRUE(cache.get(2, &out));
  EXPECT_LE(cache.stats().bytes, 64u);
  // A single entry larger than the whole byte budget is still admitted —
  // the bound degrades to "one oversized entry", never to thrashing an
  // empty cache.
  cache.put(3, "big", 1000);
  EXPECT_TRUE(cache.get(3, &out));
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ShardedLruCache, DuplicateInsertRefreshesInsteadOfDuplicating) {
  ShardedLruCache<int> cache("t", tiny_config(4));
  cache.put(7, 70, 10);
  cache.put(7, 71, 20);  // miss->compute race: second writer wins
  int out = 0;
  ASSERT_TRUE(cache.get(7, &out));
  EXPECT_EQ(out, 71);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.bytes, 20u);
}

TEST(ShardedLruCache, StatsJsonCarriesTheContractKeys) {
  ShardedLruCache<int> cache("t", tiny_config(4));
  cache.put(1, 10, 4);
  int out = 0;
  cache.get(1, &out);
  cache.get(2, &out);
  const Json doc = cache.stats_json();
  EXPECT_TRUE(doc.at("enabled").as_bool());
  EXPECT_EQ(doc.at("hits").as_int(), 1);
  EXPECT_EQ(doc.at("misses").as_int(), 1);
  EXPECT_EQ(doc.at("entries").as_int(), 1);
  EXPECT_DOUBLE_EQ(doc.at("hit_rate").as_double(), 0.5);
}

// ------------------------------------------------------------ concurrency

TEST(ShardedLruCache, ConcurrentHammeringStaysBoundedAndConsistent) {
  // 8 threads x 4000 ops over a 64-entry cache with a byte budget: every
  // get that hits must see the exact value put for that key, and the
  // bounds must hold at every quiescent point. Run under TSan via
  // `ctest -L cache` (scripts/check_tsan.sh includes the label).
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  constexpr std::uint64_t kKeys = 96;
  ShardedLruCache<std::uint64_t> cache(
      "t", tiny_config(64, /*lock_shards=*/8, /*max_bytes=*/4096));
  std::atomic<std::uint64_t> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t state = 0x9E3779B97F4A7C15ull * (t + 1);
      for (int op = 0; op < kOps; ++op) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t key = (state >> 33) % kKeys + 1;
        if (state & 1) {
          cache.put(key, key * 3, /*bytes=*/32);
        } else {
          std::uint64_t out = 0;
          if (cache.get(key, &out) && out != key * 3) ++wrong;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0u);
  const CacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, 64u);
  EXPECT_LE(stats.bytes, 4096u);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace clpp::cache
