// clpp::obs — counters/gauges/histograms, concurrent recording through
// parallel_for, span nesting, Chrome-trace JSON well-formedness, the
// structured logger, the disabled-flag fast path, request trace contexts,
// the flight recorder, and the live metrics streamer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/context.h"
#include "obs/flight.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/stream.h"
#include "obs/trace.h"
#include "support/json.h"
#include "support/parallel.h"

namespace {

using namespace clpp;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::metrics().reset();
    obs::Tracer::instance().reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::set_log_level(obs::LogLevel::kWarn);
    obs::set_log_path("");
  }

  /// Spins until the trace clock advances, so spans have nonzero duration.
  static void burn() {
    const std::uint64_t t0 = obs::Tracer::now_ns();
    volatile double sink = 0.0;
    while (obs::Tracer::now_ns() == t0) sink = sink + std::sqrt(2.0);
  }
};

TEST_F(ObsTest, CounterSemantics) {
  obs::Counter& c = obs::metrics().counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(5);
  EXPECT_EQ(c.value(), 6u);
  // Same name resolves to the same object.
  obs::metrics().counter("test.counter").add(4);
  EXPECT_EQ(c.value(), 10u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, GaugeSemantics) {
  obs::Gauge& g = obs::metrics().gauge("test.gauge");
  EXPECT_EQ(g.set_count(), 0u);
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
  EXPECT_EQ(g.set_count(), 2u);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(g.set_count(), 0u);
}

TEST_F(ObsTest, HistogramSemantics) {
  obs::Histogram& h = obs::metrics().histogram("test.hist", {1.0, 2.0, 5.0});
  h.record(0.5);   // bucket 0: <= 1
  h.record(1.5);   // bucket 1: <= 2
  h.record(100.0); // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 102.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.mean(), 34.0, 1e-9);
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST_F(ObsTest, HistogramQuantiles) {
  obs::Histogram& h = obs::metrics().histogram("test.hist.quantiles");
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  // Bucket-interpolated estimates: loose bounds, strict monotonicity.
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  const double p99 = h.quantile(0.99);
  EXPECT_GT(p50, 200.0);
  EXPECT_LT(p50, 1000.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.quantile(0.0));  // no NaN
}

TEST_F(ObsTest, ConcurrentRecordingFromParallelFor) {
  obs::Counter& c = obs::metrics().counter("test.concurrent.counter");
  obs::Histogram& h = obs::metrics().histogram("test.concurrent.hist", {10.0, 100.0});
  constexpr std::size_t kN = 100000;
  parallel_for(
      kN,
      [&](std::size_t i) {
        c.add(1);
        h.record(static_cast<double>(i % 200));
      },
      /*grain=*/1);
  EXPECT_EQ(c.value(), kN);
  EXPECT_EQ(h.count(), kN);
  // The parallel_for hook itself recorded the dispatch.
  EXPECT_GE(obs::metrics().counter("clpp.parallel.loops_parallel").value() +
                obs::metrics().counter("clpp.parallel.loops_serial").value(),
            1u);
}

TEST_F(ObsTest, ConcurrentSpansFromParallelFor) {
  constexpr std::size_t kN = 4096;
  parallel_for(
      kN, [&](std::size_t) { CLPP_TRACE_SPAN("loop.body"); }, /*grain=*/1);
  const Json doc = obs::Tracer::instance().chrome_trace();
  std::size_t found = 0;
  const Json& events = doc.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i)
    if (events.at(i).at("name").as_string() == "loop.body") ++found;
  EXPECT_EQ(found, kN);
  EXPECT_EQ(obs::Tracer::instance().dropped(), 0u);
}

TEST_F(ObsTest, SpanNesting) {
  {
    CLPP_TRACE_SPAN("outer");
    burn();
    {
      CLPP_TRACE_SPAN_ARG("inner", 7);
      burn();
    }
    burn();
  }
  const Json doc = obs::Tracer::instance().chrome_trace();
  const Json& events = doc.at("traceEvents");
  const Json* outer = nullptr;
  const Json* inner = nullptr;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    if (e.at("name").as_string() == "outer") outer = &e;
    if (e.at("name").as_string() == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  const double outer_begin = outer->at("ts").as_double();
  const double outer_end = outer_begin + outer->at("dur").as_double();
  const double inner_begin = inner->at("ts").as_double();
  const double inner_end = inner_begin + inner->at("dur").as_double();
  EXPECT_GE(inner_begin, outer_begin);
  EXPECT_LE(inner_end, outer_end);
  EXPECT_GT(outer->at("dur").as_double(), 0.0);
  // Same thread, and the span argument survived the trip.
  EXPECT_EQ(inner->at("tid").as_int(), outer->at("tid").as_int());
  EXPECT_EQ(inner->at("args").at("v").as_int(), 7);
}

TEST_F(ObsTest, ChromeTraceJsonRoundTrip) {
  {
    CLPP_TRACE_SPAN("roundtrip");
    burn();
  }
  const std::string text = obs::Tracer::instance().chrome_trace().dump();
  const Json parsed = Json::parse(text);  // throws on malformed output
  const Json& events = parsed.at("traceEvents");
  ASSERT_GE(events.size(), 1u);
  bool found = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    EXPECT_EQ(e.at("pid").as_int(), 1);
    if (e.at("ph").as_string() == "M") continue;  // thread_name metadata
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_GE(e.at("dur").as_double(), 0.0);
    if (e.at("name").as_string() == "roundtrip") found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(parsed.at("displayTimeUnit").as_string(), "ms");
}

TEST_F(ObsTest, TraceRingBufferDropsOldest) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_thread_capacity(8);
  tracer.reset();  // this thread re-registers with the new capacity
  for (int i = 0; i < 20; ++i) {
    CLPP_TRACE_SPAN("ring");
  }
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  const Json doc = tracer.chrome_trace();
  const Json& events = doc.at("traceEvents");
  std::size_t spans = 0;
  for (std::size_t i = 0; i < events.size(); ++i)
    spans += events.at(i).at("ph").as_string() == "X";
  EXPECT_EQ(spans, 8u);
  tracer.set_thread_capacity(1 << 17);
  tracer.reset();
}

TEST_F(ObsTest, DisabledFlagFastPath) {
  obs::set_enabled(false);
  obs::Counter& c = obs::metrics().counter("test.disabled.counter");
  obs::Gauge& g = obs::metrics().gauge("test.disabled.gauge");
  obs::Histogram& h = obs::metrics().histogram("test.disabled.hist");
  c.add(5);
  g.set(1.0);
  h.record(3.0);
  {
    CLPP_TRACE_SPAN("disabled.span");
  }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.set_count(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(obs::Tracer::instance().recorded(), 0u);
}

TEST_F(ObsTest, MetricsJsonSnapshot) {
  obs::metrics().counter("clpp.test.calls").add(3);
  obs::metrics().gauge("clpp.test.loss").set(0.25);
  obs::Histogram& h = obs::metrics().histogram("clpp.test.latency_us");
  h.record(10.0);
  h.record(20.0);
  const Json parsed = Json::parse(obs::metrics().to_json().dump());
  EXPECT_EQ(parsed.at("counters").at("clpp.test.calls").as_int(), 3);
  EXPECT_DOUBLE_EQ(parsed.at("gauges").at("clpp.test.loss").as_double(), 0.25);
  const Json& hist = parsed.at("histograms").at("clpp.test.latency_us");
  EXPECT_EQ(hist.at("count").as_int(), 2);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_double(), 30.0);
  EXPECT_DOUBLE_EQ(hist.at("min").as_double(), 10.0);
  EXPECT_DOUBLE_EQ(hist.at("max").as_double(), 20.0);
  // All three interpolated quantiles ship in the snapshot, monotonically.
  EXPECT_TRUE(hist.contains("p50"));
  EXPECT_TRUE(hist.contains("p95"));
  EXPECT_TRUE(hist.contains("p99"));
  EXPECT_LE(hist.at("p50").as_double(), hist.at("p95").as_double());
  EXPECT_LE(hist.at("p95").as_double(), hist.at("p99").as_double());
}

TEST_F(ObsTest, SummaryIncludesP95Column) {
  obs::Histogram& h = obs::metrics().histogram("clpp.test.latency_us");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const std::string summary = obs::metrics().summary();
  EXPECT_NE(summary.find("p95"), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceNamesThreads) {
  {
    CLPP_TRACE_SPAN("named.span");
    burn();
  }
  const Json doc = obs::Tracer::instance().chrome_trace();
  const Json& events = doc.at("traceEvents");
  bool main_named = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    if (e.at("ph").as_string() != "M") continue;
    EXPECT_EQ(e.at("name").as_string(), "thread_name");
    if (e.at("args").at("name").as_string() == "main") main_named = true;
  }
  EXPECT_TRUE(main_named);

  obs::Tracer::instance().set_thread_name("renamed");
  const Json doc2 = obs::Tracer::instance().chrome_trace();
  const Json& events2 = doc2.at("traceEvents");
  bool renamed = false;
  for (std::size_t i = 0; i < events2.size(); ++i) {
    const Json& e = events2.at(i);
    if (e.at("ph").as_string() == "M" &&
        e.at("args").at("name").as_string() == "renamed")
      renamed = true;
  }
  EXPECT_TRUE(renamed);
  obs::Tracer::instance().set_thread_name("main");
}

TEST_F(ObsTest, SummaryTablesRender) {
  obs::metrics().counter("clpp.test.calls").add(1);
  obs::metrics().gauge("clpp.test.loss").set(0.5);
  obs::metrics().histogram("clpp.test.latency_us").record(42.0);
  const std::string summary = obs::metrics().summary();
  EXPECT_NE(summary.find("clpp.test.calls"), std::string::npos);
  EXPECT_NE(summary.find("clpp.test.loss"), std::string::npos);
  EXPECT_NE(summary.find("clpp.test.latency_us"), std::string::npos);
  {
    CLPP_TRACE_SPAN("summary.span");
    burn();
  }
  EXPECT_NE(obs::Tracer::instance().summary().find("summary.span"),
            std::string::npos);
}

TEST_F(ObsTest, StructuredLoggerWritesJsonLines) {
  const std::string path = "obs_test_log.jsonl";
  std::remove(path.c_str());
  obs::set_log_path(path);
  obs::set_log_level(obs::LogLevel::kInfo);
  Json fields = Json::object();
  fields["epoch"] = 3;
  obs::log_info("obs_test", "hello", std::move(fields));
  obs::log_debug("obs_test", "filtered out");  // below threshold
  obs::set_log_path("");  // flush + release the file

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<Json> lines;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(Json::parse(line));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].at("level").as_string(), "info");
  EXPECT_EQ(lines[0].at("component").as_string(), "obs_test");
  EXPECT_EQ(lines[0].at("msg").as_string(), "hello");
  EXPECT_EQ(lines[0].at("epoch").as_int(), 3);
  EXPECT_GT(lines[0].at("ts").as_double(), 0.0);
  std::remove(path.c_str());
}

TEST_F(ObsTest, TraceContextMintAndChild) {
  const obs::TraceContext a = obs::TraceContext::mint();
  const obs::TraceContext b = obs::TraceContext::mint();
  EXPECT_TRUE(a.active());
  EXPECT_TRUE(b.active());
  EXPECT_NE(a.trace_id, 0u);
  EXPECT_NE(a.trace_id, b.trace_id);
  // Root context: the trace IS the root span.
  EXPECT_EQ(a.span_id, a.trace_id);
  EXPECT_EQ(a.parent_span_id, 0u);

  const obs::TraceContext hop = a.child();
  EXPECT_EQ(hop.trace_id, a.trace_id);  // same request
  EXPECT_NE(hop.span_id, a.span_id);
  EXPECT_EQ(hop.parent_span_id, a.span_id);

  const std::string hex = a.trace_hex();
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_NE(hex, b.trace_hex());
}

TEST_F(ObsTest, FlightRecorderRecordsAndDumps) {
  obs::reset_flight();
  obs::flight_record("test.alpha", 11, 22);
  obs::flight_record("test.beta", -3);
  EXPECT_EQ(obs::flight_recorded(), 2u);
  EXPECT_EQ(obs::flight_dropped(), 0u);

  const Json doc = obs::flight_json("unit-test");
  EXPECT_EQ(doc.at("schema").as_string(), "clpp.flight.v1");
  EXPECT_EQ(doc.at("reason").as_string(), "unit-test");
  const Json& events = doc.at("events");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events.at(0).at("kind").as_string(), "test.alpha");
  EXPECT_EQ(events.at(0).at("a").as_int(), 11);
  EXPECT_EQ(events.at(0).at("b").as_int(), 22);
  EXPECT_EQ(events.at(1).at("kind").as_string(), "test.beta");
  EXPECT_EQ(events.at(1).at("a").as_int(), -3);
  // Oldest-first within the thread's ring.
  EXPECT_LE(events.at(0).at("ts_us").as_double(),
            events.at(1).at("ts_us").as_double());

  const std::string path = ::testing::TempDir() + "clpp_obs_flight_test.json";
  std::remove(path.c_str());
  const std::string saved = obs::flight_out();
  obs::set_flight_out(path);
  EXPECT_TRUE(obs::flight_dump_on_fault());
  EXPECT_TRUE(obs::dump_flight("unit-test"));
  obs::set_flight_out(saved);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const Json reparsed = Json::parse(text);
  EXPECT_EQ(reparsed.at("schema").as_string(), "clpp.flight.v1");
  EXPECT_EQ(reparsed.at("events").size(), 2u);
  std::remove(path.c_str());

  obs::reset_flight();
  EXPECT_EQ(obs::flight_recorded(), 0u);
  EXPECT_EQ(obs::flight_json("empty").at("events").size(), 0u);
}

TEST_F(ObsTest, FlightRecorderRingKeepsNewestAndCountsDrops) {
  obs::reset_flight();
  const std::size_t total = obs::kFlightCapacity + 16;
  for (std::size_t i = 0; i < total; ++i)
    obs::flight_record("test.wrap", static_cast<std::int64_t>(i));
  EXPECT_EQ(obs::flight_recorded(), total);
  EXPECT_EQ(obs::flight_dropped(), 16u);
  const Json doc = obs::flight_json("wrap");
  const Json& events = doc.at("events");
  ASSERT_EQ(events.size(), obs::kFlightCapacity);
  // The ring keeps the newest events: the oldest 16 were overwritten.
  EXPECT_EQ(events.at(0).at("a").as_int(), 16);
  EXPECT_EQ(events.at(events.size() - 1).at("a").as_int(),
            static_cast<std::int64_t>(total) - 1);
  obs::reset_flight();
}

TEST_F(ObsTest, FlightRecorderDisableIsAFastPathNoop) {
  obs::reset_flight();
  obs::set_flight_enabled(false);
  obs::flight_record("test.off");
  obs::set_flight_enabled(true);
  EXPECT_EQ(obs::flight_recorded(), 0u);
}

TEST_F(ObsTest, MetricsStreamerEmitsDeltaLines) {
  const std::string path = ::testing::TempDir() + "clpp_obs_stream_test.jsonl";
  std::remove(path.c_str());
  obs::MetricsStreamer& streamer = obs::MetricsStreamer::instance();
  const std::uint64_t before = streamer.emitted();
  streamer.start(path, /*interval_ms=*/10);
  EXPECT_TRUE(streamer.running());
  obs::metrics().counter("clpp.test.stream.ticks").add(7);
  // Poll until at least one line lands (generous deadline; 10ms interval).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (streamer.emitted() == before &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  streamer.stop();  // flushes the final delta line
  EXPECT_FALSE(streamer.running());
  EXPECT_GT(streamer.emitted(), before);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  bool saw_delta = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const Json parsed = Json::parse(line);  // throws on malformed output
    EXPECT_EQ(parsed.at("schema").as_string(), "clpp.metrics_stream.v1");
    EXPECT_GE(parsed.at("seq").as_int(), 0);
    if (parsed.contains("counters") &&
        parsed.at("counters").contains("clpp.test.stream.ticks") &&
        parsed.at("counters").at("clpp.test.stream.ticks").as_int() == 7)
      saw_delta = true;
  }
  EXPECT_TRUE(saw_delta) << "no stream line carried the counter delta";
  std::remove(path.c_str());
}

TEST_F(ObsTest, HistogramSnapshotsAreConsistentUnderConcurrentWriters) {
  obs::Histogram& h = obs::metrics().histogram("clpp.test.load.latency_us");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&h, &stop, t] {
      // Record at least once even if the stop flag lands before this
      // thread is first scheduled (single-core machines).
      std::uint64_t i = 0;
      do {
        h.record(static_cast<double>((t * 131 + i++) % 1000));
      } while (!stop.load(std::memory_order_relaxed));
    });
  // Snapshot while the writers hammer the shards: counts must only grow,
  // and every read (count/mean/quantile/to_json) must stay self-consistent.
  std::uint64_t last_count = 0;
  for (int round = 0; round < 50; ++round) {
    std::this_thread::yield();
    const std::uint64_t count = h.count();
    EXPECT_GE(count, last_count);
    last_count = count;
    if (count > 0) {
      EXPECT_GE(h.mean(), 0.0);
      const double p50 = h.quantile(0.50);
      const double p99 = h.quantile(0.99);
      EXPECT_LE(p50, p99);
      EXPECT_FALSE(std::isnan(p50));
    }
    const Json snap = obs::metrics().to_json();
    EXPECT_TRUE(snap.at("histograms").contains("clpp.test.load.latency_us"));
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(h.count(), h.count());  // quiesced: stable final count
  EXPECT_GT(h.count(), 0u);
}

TEST_F(ObsTest, MetricsStreamerSnapshotsHistogramUnderConcurrentWriters) {
  const std::string path =
      ::testing::TempDir() + "clpp_obs_stream_concurrent_test.jsonl";
  std::remove(path.c_str());
  obs::Histogram& h = obs::metrics().histogram("clpp.test.stream.latency_us");
  obs::MetricsStreamer& streamer = obs::MetricsStreamer::instance();
  const std::uint64_t before = streamer.emitted();
  streamer.start(path, /*interval_ms=*/5);

  // record_always bypasses the enabled() gate (always-on serve telemetry),
  // so the streamer snapshots shards that are being written this instant.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&h, &stop, t] {
      std::uint64_t i = 0;
      do {
        h.record_always(static_cast<double>((t * 271 + i++) % 1000));
      } while (!stop.load(std::memory_order_relaxed));
    });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (streamer.emitted() < before + 3 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop.store(true);
  for (std::thread& w : writers) w.join();
  streamer.stop();  // final flush captures the quiesced totals

  // Every line must parse; histogram lines carry the per-interval delta
  // count plus cumulative quantiles, so the deltas must be positive, the
  // quantiles ordered, and the deltas must sum to the quiesced total — a
  // torn snapshot would lose or double-count an interval.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  double delta_sum = 0.0;
  std::int64_t lines_with_hist = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const Json parsed = Json::parse(line);
    EXPECT_EQ(parsed.at("schema").as_string(), "clpp.metrics_stream.v1");
    if (!parsed.contains("histograms") ||
        !parsed.at("histograms").contains("clpp.test.stream.latency_us"))
      continue;
    ++lines_with_hist;
    const Json& stats = parsed.at("histograms").at("clpp.test.stream.latency_us");
    EXPECT_GT(stats.at("count").as_double(), 0.0);
    delta_sum += stats.at("count").as_double();
    EXPECT_GE(stats.at("p99").as_double(), stats.at("p50").as_double());
  }
  EXPECT_GT(lines_with_hist, 0);
  EXPECT_DOUBLE_EQ(delta_sum, static_cast<double>(h.count()));
  std::remove(path.c_str());
}

TEST_F(ObsTest, AsyncSafeFlightDumpWritesParseableArtifact) {
  const std::string path =
      ::testing::TempDir() + "clpp_obs_flight_async_test.json";
  std::remove(path.c_str());
  obs::reset_flight();
  obs::set_flight_out(path);
  obs::flight_record("test.async", 7, 9);
  obs::flight_record("test.async", 8);
  // Not called from a signal handler here, but the artifact must be the
  // same shape the crash path produces (write(2)-only serializer).
  ASSERT_TRUE(obs::dump_flight_async_safe("unit_test"));
  obs::set_flight_out("clpp_flight.json");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Json doc = Json::parse(buffer.str());
  EXPECT_EQ(doc.at("schema").as_string(), "clpp.flight.v1");
  EXPECT_EQ(doc.at("reason").as_string(), "unit_test");
  EXPECT_GE(doc.at("recorded").as_int(), 2);
  bool saw_event = false;
  const Json& events = doc.at("events");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    if (e.at("kind").as_string() != "test.async" || e.at("a").as_int() != 7)
      continue;
    saw_event = true;
    EXPECT_EQ(e.at("b").as_int(), 9);
    EXPECT_GE(e.at("ts_us").as_int(), 0);
  }
  EXPECT_TRUE(saw_event);
  std::remove(path.c_str());
}

TEST_F(ObsTest, ChromeTraceEmitsFlowEventsForFlowedSpans) {
  obs::Tracer& tracer = obs::Tracer::instance();
  const obs::TraceContext ctx = obs::TraceContext::mint();
  const std::uint64_t t0 = obs::Tracer::now_ns();
  burn();
  const std::uint64_t t1 = obs::Tracer::now_ns();
  tracer.record("flow.begin", t0, t1, obs::kNoArg, ctx.trace_id,
                obs::FlowPhase::kStart);
  tracer.record("flow.mid", t1, t1 + 10, obs::kNoArg, ctx.trace_id,
                obs::FlowPhase::kStep);
  tracer.record("flow.end", t1 + 10, t1 + 20, obs::kNoArg, ctx.trace_id,
                obs::FlowPhase::kEnd);
  tracer.record("flow.none", t1 + 20, t1 + 30);  // no linkage

  const std::string text = tracer.chrome_trace().dump();
  const Json doc = Json::parse(text);  // flow events keep the JSON valid
  const Json& events = doc.at("traceEvents");
  const std::string hex = ctx.trace_hex();
  bool saw_start = false, saw_step = false, saw_finish = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    const std::string ph = e.get_string("ph", "");
    if (ph != "s" && ph != "t" && ph != "f") continue;
    EXPECT_EQ(e.at("id").as_string(), hex);
    EXPECT_EQ(e.at("cat").as_string(), "clpp.flow");
    if (ph == "s") saw_start = true;
    if (ph == "t") saw_step = true;
    if (ph == "f") {
      saw_finish = true;
      // Binding point "enclosing slice": the arrow lands on the span.
      EXPECT_EQ(e.at("bp").as_string(), "e");
    }
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_step);
  EXPECT_TRUE(saw_finish);
}

TEST_F(ObsTest, LogLevelParsing) {
  EXPECT_EQ(obs::parse_log_level("debug"), obs::LogLevel::kDebug);
  EXPECT_EQ(obs::parse_log_level("info"), obs::LogLevel::kInfo);
  EXPECT_EQ(obs::parse_log_level("warn"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::parse_log_level("error"), obs::LogLevel::kError);
  EXPECT_EQ(obs::parse_log_level("off"), obs::LogLevel::kOff);
  EXPECT_EQ(obs::parse_log_level("bogus"), obs::LogLevel::kWarn);
}

}  // namespace
