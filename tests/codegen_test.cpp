// Tests for the synthetic Open-OMP generator: every family must emit
// parseable C whose ground-truth labels are consistent, and the corpus
// statistics must land near the paper's Table 3.
#include <gtest/gtest.h>

#include <set>

#include "codegen/families.h"
#include "codegen/generator.h"
#include "codegen/names.h"
#include "frontend/parser.h"
#include "s2s/compar.h"

namespace clpp::codegen {
namespace {

class EveryFamily : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EveryFamily, EmitsParseableLabeledSnippets) {
  const Family& family = all_families()[GetParam()];
  Rng rng(0xFA0 + GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const GeneratedSnippet s = family.make(rng);
    EXPECT_EQ(s.family, family.name);
    EXPECT_EQ(s.has_directive, family.positive);
    // Snippet must parse with our pycparser-equivalent frontend.
    frontend::NodePtr unit;
    ASSERT_NO_THROW(unit = frontend::parse_snippet(s.code))
        << family.name << " trial " << trial << ":\n"
        << s.code;
    // And it must actually contain a for loop.
    EXPECT_GT(frontend::count_kind(*unit, frontend::NodeKind::kFor), 0u)
        << family.name;
    if (s.has_directive) {
      EXPECT_TRUE(s.directive.parallel);
      EXPECT_TRUE(s.directive.for_loop);
      // The directive must round-trip through the pragma parser.
      const auto parsed = frontend::parse_omp_pragma(s.directive.to_string());
      EXPECT_EQ(parsed, s.directive) << family.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, EveryFamily,
                         ::testing::Range<std::size_t>(0, all_families().size()));

TEST(FamilyRegistry, LookupByName) {
  EXPECT_EQ(family_by_name("matmul").name, "matmul");
  EXPECT_TRUE(family_by_name("io_loop").positive == false);
  EXPECT_THROW(family_by_name("nonexistent"), InvalidArgument);
}

TEST(FamilyRegistry, WeightsArePositive) {
  for (const Family& f : all_families()) EXPECT_GT(f.weight, 0.0) << f.name;
}

TEST(Generator, Deterministic) {
  GeneratorConfig config;
  config.size = 50;
  config.seed = 99;
  const auto a = generate_corpus(config);
  const auto b = generate_corpus(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig config;
  config.size = 50;
  config.seed = 1;
  const auto a = generate_corpus(config);
  config.seed = 2;
  const auto b = generate_corpus(config);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += (a.at(i).code == b.at(i).code);
  EXPECT_LT(same, 10u);
}

TEST(Generator, StatisticsLandNearTable3) {
  GeneratorConfig config;
  config.size = 4000;
  config.seed = 2023;
  const auto corpus = generate_corpus(config);
  const auto stats = corpus.stats();
  EXPECT_EQ(stats.total, 4000u);
  const double directive_rate = static_cast<double>(stats.with_directive) / stats.total;
  // Paper: 13,139 / 28,374 = 46.3%.
  EXPECT_NEAR(directive_rate, 0.463, 0.06);
  const double private_rate =
      static_cast<double>(stats.private_clause) / stats.with_directive;
  // Paper: 6,034 / 13,139 = 45.9%. Our corpus sits a little below because a
  // realistic share of snippets declares temporaries/inner indices inline
  // (block-scoped, no clause needed) — a confound the clause task requires.
  EXPECT_NEAR(private_rate, 0.459, 0.12);
  const double reduction_rate =
      static_cast<double>(stats.reduction) / stats.with_directive;
  // Paper: 3,865 / 13,139 = 29.4%.
  EXPECT_NEAR(reduction_rate, 0.294, 0.10);
  const double dynamic_rate =
      static_cast<double>(stats.schedule_dynamic) / stats.with_directive;
  // Paper: 1,973 / 13,139 = 15.0%.
  EXPECT_NEAR(dynamic_rate, 0.150, 0.08);
}

TEST(Generator, LabelNoiseFlipsApproximatelyAtRate) {
  GeneratorConfig noisy;
  noisy.size = 3000;
  noisy.seed = 5;
  noisy.label_noise = 0.0;
  const auto clean = generate_corpus(noisy);
  noisy.label_noise = 0.10;
  const auto flipped = generate_corpus(noisy);
  std::size_t flips = 0;
  for (std::size_t i = 0; i < clean.size(); ++i)
    flips += clean.at(i).has_directive != flipped.at(i).has_directive;
  EXPECT_NEAR(static_cast<double>(flips) / clean.size(), 0.10, 0.03);
}

TEST(Generator, BuggyKnobSeedsTaggedDefects) {
  GeneratorConfig config;
  config.size = 2000;
  config.seed = 5;
  config.label_noise = 0.0;
  config.buggy_directive_rate = 0.25;
  const auto buggy = generate_corpus(config);

  const std::set<std::string> known_bugs = {
      "missing-reduction", "missing-private", "shared-induction",
      "loop-carried-dependence"};
  const std::set<std::string> racy_families = {"recurrence", "scalar_carried",
                                               "outer_dependent", "indirect_write"};
  std::size_t tagged = 0;
  for (const auto& record : buggy.records()) {
    if (record.bug.empty()) continue;
    ++tagged;
    ASSERT_GT(known_bugs.count(record.bug), 0u) << record.bug;
    EXPECT_TRUE(record.has_directive) << "a seeded bug always leaves a directive";
    // The tag must be consistent with the corruption applied.
    const frontend::OmpDirective d = record.directive();
    if (record.bug == "missing-reduction") {
      EXPECT_TRUE(d.reductions.empty());
    } else if (record.bug == "missing-private") {
      EXPECT_TRUE(d.private_vars.empty());
    } else if (record.bug == "shared-induction") {
      EXPECT_FALSE(d.shared_vars.empty());
    } else if (record.bug == "loop-carried-dependence") {
      EXPECT_GT(racy_families.count(record.family), 0u) << record.family;
    }
  }
  // Not every draw is corruptible (negatives of safe families are no-ops),
  // but a healthy fraction must land.
  EXPECT_GT(tagged, buggy.size() / 20);

  config.buggy_directive_rate = 0.0;
  const auto clean = generate_corpus(config);
  for (const auto& record : clean.records()) EXPECT_TRUE(record.bug.empty());
}

TEST(Generator, BuggyKnobOffKeepsCorpusBitIdentical) {
  GeneratorConfig config;
  config.size = 500;
  config.seed = 2023;
  const auto a = generate_corpus(config);
  config.buggy_directive_rate = 0.0;  // explicit zero, same stream
  const auto b = generate_corpus(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(Generator, SnippetsAllParse) {
  GeneratorConfig config;
  config.size = 400;
  config.seed = 77;
  const auto corpus = generate_corpus(config);
  for (const auto& record : corpus.records())
    ASSERT_NO_THROW(frontend::parse_snippet(record.code)) << record.code;
}

TEST(Generator, ComParFailureRateIsRealistic) {
  // §5.2: ComPar failed to compile 526/3547 ≈ 15% of test snippets. Our
  // hostile families (structs, goto) should yield a similar ensemble
  // failure rate on the synthetic corpus.
  GeneratorConfig config;
  config.size = 600;
  config.seed = 11;
  const auto corpus = generate_corpus(config);
  s2s::ComPar compar;
  std::size_t failures = 0;
  for (const auto& record : corpus.records())
    failures += compar.process_source(record.code).compile_failed();
  const double rate = static_cast<double>(failures) / corpus.size();
  EXPECT_GT(rate, 0.05);
  EXPECT_LT(rate, 0.30);
}

TEST(Names, HpcStyleFavoursHpcPool) {
  Rng rng(3);
  std::size_t hpc_hits = 0;
  const std::set<std::string> hpc_arrays = {"A", "B",  "C",  "a",  "b", "c",
                                            "arr", "vec", "data", "u", "v", "w",
                                            "x", "y", "mat", "grid", "out", "in"};
  for (int t = 0; t < 400; ++t) {
    NamePool pool(rng, NameStyle::kHpc);
    hpc_hits += hpc_arrays.count(pool.array());
  }
  EXPECT_GT(hpc_hits, 300u);  // ~85% expected
}

TEST(Names, UniqueWithinSnippet) {
  Rng rng(4);
  NamePool pool(rng, NameStyle::kHpc);
  std::set<std::string> seen;
  for (int t = 0; t < 30; ++t) {
    EXPECT_TRUE(seen.insert(pool.array()).second);
    EXPECT_TRUE(seen.insert(pool.induction()).second);
  }
}

// --- simd families -----------------------------------------------------------------

TEST(SimdFamilies, EmitParseableSnippetsWithSimdDirectives) {
  ASSERT_FALSE(simd_families().empty());
  Rng rng(0x51D);
  for (const Family& family : simd_families()) {
    EXPECT_TRUE(family.positive) << family.name;
    EXPECT_GT(family.weight, 0.0) << family.name;
    for (int trial = 0; trial < 25; ++trial) {
      const GeneratedSnippet s = family.make(rng);
      EXPECT_EQ(s.family, family.name);
      ASSERT_TRUE(s.has_directive) << family.name;
      frontend::NodePtr unit;
      ASSERT_NO_THROW(unit = frontend::parse_snippet(s.code))
          << family.name << " trial " << trial << ":\n"
          << s.code;
      EXPECT_GT(frontend::count_kind(*unit, frontend::NodeKind::kFor), 0u);
      // simd_nest is the one worksharing family (its seeded bug ADDS simd);
      // the rest carry a bare `#pragma omp simd`.
      if (family.name == "simd_nest") {
        EXPECT_TRUE(s.directive.for_loop) << family.name;
        EXPECT_FALSE(s.directive.simd) << family.name;
      } else {
        EXPECT_TRUE(s.directive.simd) << family.name;
        EXPECT_FALSE(s.directive.for_loop) << family.name;
      }
      const auto parsed = frontend::parse_omp_pragma(s.directive.to_string());
      EXPECT_EQ(parsed, s.directive) << family.name;
    }
  }
}

TEST(SimdFamilies, KeptOutOfTheDefaultRegistry) {
  // The default mix must stay bit-identical for existing seeds, so the simd
  // families only join through GeneratorConfig.simd_families.
  for (const Family& family : all_families())
    EXPECT_NE(family.name.rfind("simd_", 0), 0u) << family.name;
  // But they are addressable by name for tooling.
  EXPECT_EQ(family_by_name("simd_saxpy").name, "simd_saxpy");
  EXPECT_EQ(family_by_name("simd_offset_stream").name, "simd_offset_stream");
}

TEST(SimdFamilies, ConfigKnobMixesThemIn) {
  GeneratorConfig config;
  config.size = 400;
  config.seed = 31;
  const auto plain = generate_corpus(config);
  for (const auto& record : plain.records())
    EXPECT_NE(record.family.rfind("simd_", 0), 0u) << record.family;

  config.simd_families = true;
  const auto mixed = generate_corpus(config);
  std::size_t simd_records = 0;
  for (const auto& record : mixed.records())
    if (record.family.rfind("simd_", 0) == 0) ++simd_records;
  EXPECT_GT(simd_records, 0u);
}

TEST(SimdFamilies, SeededSimdBugsAreConsistentlyTagged) {
  GeneratorConfig config;
  config.size = 1500;
  config.seed = 8;
  config.label_noise = 0.0;
  config.buggy_directive_rate = 0.3;
  config.simd_families = true;
  const auto corpus = generate_corpus(config);

  std::set<std::string> seen_bugs;
  for (const auto& record : corpus.records()) {
    if (record.bug.empty() || record.bug.rfind("simd-", 0) != 0) continue;
    seen_bugs.insert(record.bug);
    const frontend::OmpDirective d = record.directive();
    if (record.bug == "simd-misses-safelen") {
      EXPECT_TRUE(d.simd);
      EXPECT_EQ(d.safelen, 0) << "the bug drops the safelen clause";
    } else if (record.bug == "simd-unsafe-carried-dependence") {
      EXPECT_TRUE(d.simd);
      EXPECT_GT(d.safelen, 0) << "the bug widens safelen past the distance";
    } else if (record.bug == "simd-reduction-mismatch") {
      EXPECT_TRUE(d.simd);
      EXPECT_TRUE(d.reductions.empty());
    } else if (record.bug == "simd-on-non-innermost") {
      EXPECT_EQ(record.family, "simd_nest");
      EXPECT_TRUE(d.simd);
      EXPECT_TRUE(d.for_loop);
    } else {
      FAIL() << "unexpected simd bug tag " << record.bug;
    }
  }
  // All four seeded simd defects must occur at this size.
  EXPECT_EQ(seen_bugs.size(), 4u);
}

}  // namespace
}  // namespace clpp::codegen
