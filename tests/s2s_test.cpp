// Tests for the S2S compiler personalities and the ComPar ensemble,
// including the paper's Table 1 pitfall scenarios.
#include <gtest/gtest.h>

#include "frontend/parser.h"
#include "s2s/compar.h"
#include "s2s/compiler.h"

namespace clpp::s2s {
namespace {

using frontend::parse_snippet;

S2SResult run(const CompilerProfile& profile, const char* code) {
  const frontend::NodePtr unit = parse_snippet(code);
  return S2SCompiler(profile).process(*unit);
}

TEST(Cetus, ParallelizesIndependentLoop) {
  const auto r = run(cetus_profile(), "for (i = 0; i < 1000; i++) a[i] = i;");
  ASSERT_TRUE(r.parallelized());
  EXPECT_TRUE(r.directive->parallel);
  EXPECT_TRUE(r.directive->for_loop);
  // Cetus personality spells out schedule(static) and private(i).
  EXPECT_EQ(r.directive->schedule, frontend::ScheduleKind::kStatic);
  ASSERT_EQ(r.directive->private_vars.size(), 1u);
  EXPECT_EQ(r.directive->private_vars[0], "i");
}

TEST(Cetus, SkipsLowTripLoop) {
  const auto r = run(cetus_profile(), "for (i = 0; i < 4; i++) a[i] = i;");
  EXPECT_EQ(r.status, S2SResult::Status::kNoDirective);
}

TEST(Cetus, RecognizesCanonicalReductionOnly) {
  const auto sum = run(cetus_profile(),
                       "for (i = 0; i < 1000; i++) total += a[i];");
  ASSERT_TRUE(sum.parallelized());
  ASSERT_EQ(sum.directive->reductions.size(), 1u);

  const auto maxv = run(cetus_profile(),
                        "for (i = 0; i < 1000; i++) { if (a[i] > m) m = a[i]; }");
  EXPECT_FALSE(maxv.parallelized())
      << "conditional max is not a canonical reduction for Cetus";
}

TEST(Cetus, StaticScheduleDespiteUnbalancedWork) {
  // Table 1 example #2: Cetus uses schedule(static) even when the body has
  // conditional work — the documented pitfall.
  const auto r = run(cetus_profile(),
                     "int MoreCalc(int i) { return i % 3; }\n"
                     "int Calc(int i) { return i * i; }\n"
                     "for (i = 0; i <= 1000; i++) if (MoreCalc(i)) out[i] = Calc(i);");
  ASSERT_TRUE(r.parallelized());
  EXPECT_EQ(r.directive->schedule, frontend::ScheduleKind::kStatic);
}

TEST(Cetus, BailsOnUnknownCallee) {
  const auto r = run(cetus_profile(), "for (i = 0; i < 1000; i++) Work(i);");
  EXPECT_TRUE(r.failed());
}

TEST(Cetus, TwoConsecutiveLoopsGetSeparateRegions) {
  // Table 1 example #1: the S2S compiler handles one loop at a time and
  // cannot fuse the parallel regions.
  const char* code =
      "for (i = 0; i <= 1000; i++) A[i] = i;\n"
      "for (i = 0; i <= 1000; i++) B[i] = B[i] * 2;";
  const frontend::NodePtr unit = parse_snippet(code);
  const S2SCompiler cetus(cetus_profile());
  int regions = 0;
  for (const auto& item : unit->children) {
    if (item->kind != frontend::NodeKind::kFor) continue;
    const auto r = cetus.process_loop(*unit, *item);
    if (r.parallelized() && r.directive->parallel) ++regions;
  }
  EXPECT_EQ(regions, 2) << "thread team spawned twice — the documented overhead";
}

TEST(AutoPar, DoesNotRecognizeReductions) {
  const auto r = run(autopar_profile(), "for (i = 0; i < 1000; i++) s += a[i];");
  EXPECT_FALSE(r.parallelized());
}

TEST(AutoPar, FailsOnLocalFunctions) {
  const auto r = run(autopar_profile(),
                     "int f(int x) { return x; }\n"
                     "for (i = 0; i < 1000; i++) a[i] = i;");
  EXPECT_TRUE(r.failed());
}

TEST(Par4All, FailsOnLongSnippets) {
  std::string code;
  for (int s = 0; s < 50; ++s) {
    code += "x";
    code += std::to_string(s);
    code += " = 1;\n";
  }
  code += "for (i = 0; i < 1000; i++) a[i] = i;";
  const frontend::NodePtr unit = parse_snippet(code);
  const auto r = S2SCompiler(par4all_profile()).process(*unit);
  EXPECT_TRUE(r.failed());
}

TEST(Par4All, NoExplicitIteratorPrivate) {
  const auto r = run(par4all_profile(), "for (i = 0; i < 1000; i++) a[i] = i;");
  ASSERT_TRUE(r.parallelized());
  EXPECT_TRUE(r.directive->private_vars.empty());
}

TEST(AllProfiles, FailOnGoto) {
  const char* code = "for (i = 0; i < 1000; i++) a[i] = i;\nend: x = 1;";
  for (const auto& profile : {cetus_profile(), autopar_profile(), par4all_profile()})
    EXPECT_TRUE(run(profile, code).failed()) << profile.name;
}

TEST(Annotate, InsertsPragmaAboveLoop) {
  const S2SCompiler cetus(cetus_profile());
  const std::string out =
      cetus.annotate("for (i = 0; i < 1000; i++) a[i] = b[i] + c[i];");
  EXPECT_NE(out.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_LT(out.find("#pragma"), out.find("for ("));
}

TEST(Annotate, LeavesUnparallelizableCodeAlone) {
  const S2SCompiler cetus(cetus_profile());
  const std::string src = "for (i = 1; i < 1000; i++) a[i] = a[i - 1];";
  EXPECT_EQ(cetus.annotate(src), src);
}

TEST(Annotate, SurvivesUnparsableInput) {
  const S2SCompiler cetus(cetus_profile());
  const std::string garbage = "this is not C at all @@@";
  EXPECT_EQ(cetus.annotate(garbage), garbage);
}

TEST(ComPar, PicksRichestDirective) {
  // Cetus recognizes the reduction; AutoPar does not. The ensemble must
  // surface the reduction-bearing directive.
  ComPar compar;
  const frontend::NodePtr unit =
      parse_snippet("for (i = 0; i < 1000; i++) total += a[i];");
  const ComParResult r = compar.process(*unit);
  ASSERT_TRUE(r.predicts_directive());
  EXPECT_TRUE(r.predicts_reduction());
  EXPECT_EQ(r.members.size(), 3u);
}

TEST(ComPar, FailsOnlyWhenAllMembersFail) {
  ComPar compar;
  const frontend::NodePtr hostile = parse_snippet(
      "for (i = 0; i < 1000; i++) a[i] = i;\nskip: x = 1;");
  EXPECT_TRUE(compar.process(*hostile).compile_failed());

  // Local helper functions kill AutoPar/Par4All but Cetus still compiles.
  const frontend::NodePtr partial = parse_snippet(
      "int sq(int x) { return x * x; }\n"
      "for (i = 0; i < 1000; i++) a[i] = sq(i);");
  const ComParResult r = compar.process(*partial);
  EXPECT_FALSE(r.compile_failed());
  EXPECT_TRUE(r.predicts_directive());
}

TEST(ComPar, NoDirectiveOnDependentLoop) {
  ComPar compar;
  const frontend::NodePtr unit =
      parse_snippet("for (i = 1; i < 1000; i++) a[i] = a[i - 1] + 1;");
  const ComParResult r = compar.process(*unit);
  EXPECT_FALSE(r.predicts_directive());
  EXPECT_FALSE(r.compile_failed());
}

TEST(ComPar, ParseFailureIsCompileFailure) {
  ComPar compar;
  EXPECT_TRUE(compar.process_source("garbage ( (").compile_failed());
}

TEST(ComPar, PrivatePredictionIncludesIterator) {
  // The §5.3 pitfall: ComPar predicts private(i) on loops where developers
  // rely on the implicit default — a false positive against human labels.
  ComPar compar;
  const frontend::NodePtr unit =
      parse_snippet("for (i = 0; i < 1000; i++) a[i] = i;");
  const ComParResult r = compar.process(*unit);
  ASSERT_TRUE(r.predicts_directive());
  EXPECT_TRUE(r.predicts_private());
}

TEST(ComPar, CustomEnsemble) {
  ComPar solo(std::vector<CompilerProfile>{par4all_profile()});
  const frontend::NodePtr unit = parse_snippet(
      "int f(int x) { return x; }\nfor (i = 0; i < 10; i++) a[i] = f(i);");
  EXPECT_TRUE(solo.process(*unit).compile_failed());
}

TEST(FindTargetLoop, PrefersTopLevel) {
  const frontend::NodePtr unit = parse_snippet(
      "x = 1;\nfor (i = 0; i < n; i++) a[i] = i;\nfor (j = 0; j < n; j++) ;");
  const frontend::Node* loop = find_target_loop(*unit);
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop, unit->children[1].get());
}

TEST(FindTargetLoop, FindsNestedInsideFunction) {
  const frontend::NodePtr unit = parse_snippet(
      "void kernel(void) { for (int i = 0; i < 10; i++) a[i] = i; }");
  EXPECT_NE(find_target_loop(*unit), nullptr);
}

}  // namespace
}  // namespace clpp::s2s
