// Tests for the ParallelAdvisor API: end-to-end advice, the schedule
// extension task, and save/load persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/advisor.h"

namespace clpp::core {
namespace {

PipelineConfig tiny_config() {
  PipelineConfig config;
  config.generator.size = 700;
  config.generator.seed = 99;
  config.encoder.dim = 32;
  config.encoder.heads = 4;
  config.encoder.layers = 1;
  config.encoder.ffn_dim = 48;
  config.max_len = 64;
  config.train.epochs = 4;
  config.mlm_pretrain = false;
  return config;
}

/// One trained advisor shared by all tests in this file (training is the
/// expensive part; the assertions are cheap).
const ParallelAdvisor& advisor() {
  static const ParallelAdvisor instance = ParallelAdvisor::train(tiny_config());
  return instance;
}

TEST(Advisor, ProbabilitiesAreProbabilities) {
  const Advice advice = advisor().advise("for (i = 0; i < n; i++) a[i] = b[i];");
  for (float p : {advice.p_directive, advice.p_private, advice.p_reduction,
                  advice.p_dynamic}) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(Advisor, SuggestionOnlyWhenDirectiveNeeded) {
  const Advice yes = advisor().advise("for (i = 0; i < n; i++) c[i] = a[i] + b[i];");
  if (yes.needs_directive) {
    EXPECT_NE(yes.suggestion.find("#pragma omp parallel for"), std::string::npos);
  } else {
    EXPECT_TRUE(yes.suggestion.empty());
  }
  const Advice no = advisor().advise(
      "for (i = 1; i < n; i++) a[i] = a[i - 1] + 1;");
  if (!no.needs_directive) {
    EXPECT_TRUE(no.suggestion.empty());
  }
}

TEST(Advisor, ScheduleModelIsAttachedByTrain) {
  // train() wires the 4th (schedule) model; p_dynamic must react to input
  // (not stay at the default 0).
  const Advice a = advisor().advise("for (i = 0; i < n; i++) a[i] = 0;");
  const Advice b = advisor().advise(
      "for (i = 0; i < n; i++) { if (a[i] > 0.5) a[i] = evolve(a[i]); }");
  const bool any_nonzero = a.p_dynamic != 0.0f || b.p_dynamic != 0.0f;
  EXPECT_TRUE(any_nonzero);
}

TEST(Advisor, AdviceIsDeterministicInEvalMode) {
  const char* code = "for (i = 0; i < n; i++) total += a[i];";
  const Advice first = advisor().advise(code);
  const Advice second = advisor().advise(code);
  EXPECT_EQ(first.p_directive, second.p_directive);
  EXPECT_EQ(first.suggestion, second.suggestion);
}

TEST(Advisor, SurvivesUnparseableCode) {
  // Text representation only lexes; garbage code must not throw.
  EXPECT_NO_THROW(advisor().advise("for while ( ( ( x y z"));
}

TEST(Advisor, SaveLoadRoundTripPreservesBehaviour) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "clpp_advisor_test.bin").string();
  advisor().save(path);
  const ParallelAdvisor restored = ParallelAdvisor::load(path);

  const char* snippets[] = {
      "for (i = 0; i < n; i++) c[i] = a[i] + b[i];",
      "for (i = 0; i < n; i++) sum += a[i];",
      "for (i = 1; i < n; i++) a[i] = a[i - 1];",
      "for (i = 0; i < n; i++) printf(\"%d\", a[i]);",
  };
  for (const char* code : snippets) {
    const Advice original = advisor().advise(code);
    const Advice loaded = restored.advise(code);
    EXPECT_FLOAT_EQ(original.p_directive, loaded.p_directive) << code;
    EXPECT_FLOAT_EQ(original.p_private, loaded.p_private) << code;
    EXPECT_FLOAT_EQ(original.p_reduction, loaded.p_reduction) << code;
    EXPECT_FLOAT_EQ(original.p_dynamic, loaded.p_dynamic) << code;
    EXPECT_EQ(original.suggestion, loaded.suggestion) << code;
  }
  std::remove(path.c_str());
}

TEST(Advisor, LoadRejectsGarbageFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "clpp_advisor_garbage.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not an advisor";
  }
  EXPECT_THROW(ParallelAdvisor::load(path), Error);
  std::remove(path.c_str());
  EXPECT_THROW(ParallelAdvisor::load("/nonexistent/path.bin"), IoError);
}

TEST(ScheduleTask, LabelsComeFromScheduleKind) {
  corpus::Record dynamic_record;
  dynamic_record.id = "d";
  dynamic_record.code = "for (i = 0; i < n; i++) a[i] = f(i);";
  dynamic_record.has_directive = true;
  dynamic_record.directive_text = "#pragma omp parallel for schedule(dynamic)";
  dynamic_record.refresh_labels();
  EXPECT_EQ(corpus::label_of(dynamic_record, corpus::Task::kSchedule), 1);

  corpus::Record static_record = dynamic_record;
  static_record.directive_text = "#pragma omp parallel for";
  static_record.refresh_labels();
  EXPECT_EQ(corpus::label_of(static_record, corpus::Task::kSchedule), 0);
  EXPECT_EQ(corpus::task_name(corpus::Task::kSchedule), "schedule");
}

}  // namespace
}  // namespace clpp::core
