// Unit tests for clpp::tensor (shapes, kernels, serialization).
#include <gtest/gtest.h>

#include <sstream>

#include "support/rng.h"
#include "tensor/io.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace clpp {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  const std::size_t m = ta ? a.dim(1) : a.dim(0);
  const std::size_t k = ta ? a.dim(0) : a.dim(1);
  const std::size_t n = tb ? b.dim(0) : b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ta ? a(p, i) : a(i, p);
        const float bv = tb ? b(j, p) : b(p, j);
        acc += av * bv;
      }
      c(i, j) = acc;
    }
  return c;
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (float v : t.values()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, RejectsZeroDimension) {
  EXPECT_THROW(Tensor({2, 0}), InvalidArgument);
}

TEST(Tensor, RejectsRankAboveThree) {
  EXPECT_THROW(Tensor({2, 2, 2, 2}), InvalidArgument);
}

TEST(Tensor, FromValidatesCount) {
  EXPECT_THROW(Tensor::from({2, 2}, {1.0f}), InvalidArgument);
  const Tensor t = Tensor::from({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t(1, 1), 4.0f);
}

TEST(Tensor, RankThreeIndexing) {
  Tensor t({2, 3, 4});
  t(1, 2, 3) = 42.0f;
  EXPECT_EQ(t(1 * 12 + 2 * 4 + 3), 42.0f);
}

TEST(Tensor, ReshapedPreservesData) {
  Tensor t = Tensor::from({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), InvalidArgument);
}

TEST(Tensor, Reductions) {
  const Tensor t = Tensor::from({2, 2}, {1, -2, 3, 4});
  EXPECT_FLOAT_EQ(t.sum(), 6.0f);
  EXPECT_FLOAT_EQ(t.mean(), 1.5f);
  EXPECT_FLOAT_EQ(t.min(), -2.0f);
  EXPECT_FLOAT_EQ(t.max(), 4.0f);
}

TEST(Tensor, AllClose) {
  const Tensor a = Tensor::from({2}, {1.0f, 2.0f});
  Tensor b = a;
  EXPECT_TRUE(a.allclose(b));
  b(0) += 1e-3f;
  EXPECT_FALSE(a.allclose(b, 1e-5f));
  EXPECT_TRUE(a.allclose(b, 1e-2f));
}

TEST(Tensor, AtChecksBounds) {
  const Tensor t({2, 2});
  EXPECT_THROW(t.at(2, 0), InvalidArgument);
}

class GemmVariants : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(GemmVariants, MatchesNaiveReference) {
  const auto [ta, tb] = GetParam();
  Rng rng(13);
  // Dimensions chosen so op(A) is [5x7] and op(B) is [7x4].
  const Tensor a = Tensor::randn(ta ? std::vector<std::size_t>{7, 5}
                                    : std::vector<std::size_t>{5, 7},
                                 rng);
  const Tensor b = Tensor::randn(tb ? std::vector<std::size_t>{4, 7}
                                    : std::vector<std::size_t>{7, 4},
                                 rng);
  const Tensor got = matmul(a, b, ta, tb);
  const Tensor want = naive_matmul(a, b, ta, tb);
  EXPECT_TRUE(got.allclose(want, 1e-4f)) << "ta=" << ta << " tb=" << tb;
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, GemmVariants,
                         ::testing::Values(std::pair{false, false},
                                           std::pair{false, true},
                                           std::pair{true, false},
                                           std::pair{true, true}));

TEST(Gemm, AccumulatesWithBeta) {
  Rng rng(14);
  const Tensor a = Tensor::randn({3, 3}, rng);
  const Tensor b = Tensor::randn({3, 3}, rng);
  Tensor c = Tensor::full({3, 3}, 2.0f);
  gemm(a, b, c, false, false, 1.0f, 1.0f);
  Tensor want = naive_matmul(a, b, false, false);
  for (float& v : want.values()) v += 2.0f;
  EXPECT_TRUE(c.allclose(want, 1e-4f));
}

TEST(Gemm, AlphaScales) {
  Rng rng(15);
  const Tensor a = Tensor::randn({2, 4}, rng);
  const Tensor b = Tensor::randn({4, 2}, rng);
  Tensor c({2, 2});
  gemm(a, b, c, false, false, 0.5f, 0.0f);
  Tensor want = naive_matmul(a, b, false, false);
  for (float& v : want.values()) v *= 0.5f;
  EXPECT_TRUE(c.allclose(want, 1e-4f));
}

TEST(Gemm, RejectsShapeMismatch) {
  const Tensor a({2, 3});
  const Tensor b({4, 2});
  Tensor c({2, 2});
  EXPECT_THROW(gemm(a, b, c), InvalidArgument);
}

TEST(Gemm, LargeSizeAgainstNaive) {
  Rng rng(16);
  const Tensor a = Tensor::randn({64, 48}, rng);
  const Tensor b = Tensor::randn({48, 32}, rng);
  EXPECT_TRUE(matmul(a, b).allclose(naive_matmul(a, b, false, false), 1e-3f));
}

TEST(Ops, RowBroadcastAndSumRowsAreAdjoint) {
  Rng rng(17);
  Tensor y = Tensor::randn({4, 3}, rng);
  const Tensor y0 = y;
  const Tensor bias = Tensor::from({3}, {1, 2, 3});
  add_row_broadcast(y, bias);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_FLOAT_EQ(y(i, j), y0(i, j) + bias(j));

  Tensor sums({3});
  sum_rows(y0, sums);
  for (std::size_t j = 0; j < 3; ++j) {
    float want = 0;
    for (std::size_t i = 0; i < 4; ++i) want += y0(i, j);
    EXPECT_NEAR(sums(j), want, 1e-5f);
  }
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(18);
  Tensor x = Tensor::randn({5, 9}, rng, 0.0f, 10.0f);
  softmax_rows(x);
  for (std::size_t i = 0; i < 5; ++i) {
    float total = 0;
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_GE(x(i, j), 0.0f);
      total += x(i, j);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxIsShiftInvariant) {
  Tensor a = Tensor::from({1, 3}, {1, 2, 3});
  Tensor b = Tensor::from({1, 3}, {1001, 1002, 1003});
  softmax_rows(a);
  softmax_rows(b);
  EXPECT_TRUE(a.allclose(b, 1e-5f));
}

TEST(Ops, MaskedSoftmaxZeroesPaddedColumns) {
  Tensor x = Tensor::from({2, 4}, {1, 2, 3, 4, 1, 1, 1, 1});
  const std::vector<int> valid = {2, 4};
  softmax_rows_masked(x, valid);
  EXPECT_EQ(x(0, 2), 0.0f);
  EXPECT_EQ(x(0, 3), 0.0f);
  EXPECT_NEAR(x(0, 0) + x(0, 1), 1.0f, 1e-5f);
  EXPECT_NEAR(x(1, 0) + x(1, 1) + x(1, 2) + x(1, 3), 1.0f, 1e-5f);
}

TEST(Ops, MaskedSoftmaxRejectsZeroLength) {
  Tensor x({1, 3});
  const std::vector<int> valid = {0};
  EXPECT_THROW(softmax_rows_masked(x, valid), InvalidArgument);
}

TEST(Ops, Argmax) {
  const std::vector<float> row = {0.1f, 0.9f, 0.3f};
  EXPECT_EQ(argmax(row), 1u);
}

TEST(Ops, AxpyAndScale) {
  Tensor y = Tensor::from({3}, {1, 2, 3});
  const Tensor x = Tensor::from({3}, {10, 10, 10});
  axpy(y, 0.5f, x);
  EXPECT_FLOAT_EQ(y(1), 7.0f);
  scale_inplace(y, 2.0f);
  EXPECT_FLOAT_EQ(y(2), 16.0f);
}

TEST(Ops, SquaredNorm) {
  const Tensor x = Tensor::from({2}, {3, 4});
  EXPECT_DOUBLE_EQ(squared_norm(x), 25.0);
}

TEST(TensorIo, RoundTripsAllRanks) {
  Rng rng(19);
  for (const auto& shape :
       {std::vector<std::size_t>{7}, {3, 4}, {2, 3, 4}}) {
    const Tensor t = Tensor::randn(shape, rng);
    std::stringstream buf;
    write_tensor(buf, t);
    const Tensor back = read_tensor(buf);
    EXPECT_TRUE(back.allclose(t, 0.0f));
  }
}

TEST(TensorIo, RejectsCorruptMagic) {
  std::stringstream buf;
  buf << "NOPE garbage";
  EXPECT_THROW(read_tensor(buf), ParseError);
}

TEST(TensorIo, RejectsTruncation) {
  Rng rng(20);
  const Tensor t = Tensor::randn({8, 8}, rng);
  std::stringstream buf;
  write_tensor(buf, t);
  std::string data = buf.str();
  data.resize(data.size() / 2);
  std::stringstream half(data);
  EXPECT_THROW(read_tensor(half), IoError);
}

TEST(TensorIo, StringRoundTrip) {
  std::stringstream buf;
  write_string(buf, "encoder.block0.attn.q.weight");
  EXPECT_EQ(read_string(buf), "encoder.block0.attn.q.weight");
}

}  // namespace
}  // namespace clpp
