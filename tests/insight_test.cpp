// clpp::insight — reliability bins / ECE accounting, the snippet-feature
// fingerprint and its JSON round-trip, PSI drift scoring, the sliding
// drift window, the InsightTracker disagreement bookkeeping, and the
// advisor checkpoint carrying the training fingerprint (container v2).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "insight/calibration.h"
#include "insight/drift.h"
#include "insight/insight.h"
#include "support/json.h"
#include "tokenize/representation.h"
#include "tokenize/vocabulary.h"

namespace clpp::insight {
namespace {

TEST(ReliabilityBins, PerfectCalibrationHasZeroEce) {
  ReliabilityBins bins(10);
  // 100 observations at confidence 0.75, exactly 75 of them correct: the
  // bin's accuracy equals its mean confidence, so the gap is zero.
  for (int i = 0; i < 100; ++i) bins.observe(0.75, i < 75);
  EXPECT_EQ(bins.count(), 100u);
  EXPECT_EQ(bins.labeled(), 100u);
  EXPECT_NEAR(bins.ece(), 0.0, 1e-12);
  EXPECT_NEAR(bins.mean_confidence(), 0.75, 1e-12);
}

TEST(ReliabilityBins, OverconfidenceShowsUpAsEce) {
  ReliabilityBins bins(10);
  // Confident and always wrong: the calibration gap is the confidence.
  for (int i = 0; i < 50; ++i) bins.observe(0.95, false);
  EXPECT_NEAR(bins.ece(), 0.95, 1e-12);
}

TEST(ReliabilityBins, UnlabeledObservationsFillHistogramOnly) {
  ReliabilityBins bins(10);
  bins.observe(0.05);
  bins.observe(0.95);
  bins.observe(0.95, true);
  EXPECT_EQ(bins.count(), 3u);
  EXPECT_EQ(bins.labeled(), 1u);
  const std::vector<std::uint64_t> hist = bins.histogram();
  ASSERT_EQ(hist.size(), 10u);
  EXPECT_EQ(hist.front(), 1u);
  EXPECT_EQ(hist.back(), 2u);
  // ECE is over labeled observations only; the lone correct one is exact.
  EXPECT_NEAR(bins.ece(), 0.05, 1e-12);
}

TEST(ReliabilityBins, JsonSnapshotCarriesBins) {
  ReliabilityBins bins(4);
  bins.observe(0.9, true);
  bins.observe(0.1, false);
  const Json doc = bins.to_json();
  EXPECT_EQ(doc.at("count").as_int(), 2);
  EXPECT_EQ(doc.at("labeled").as_int(), 2);
  ASSERT_EQ(doc.at("bins").size(), 4u);
  EXPECT_DOUBLE_EQ(doc.at("bins").at(0).at("lo").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(doc.at("bins").at(3).at("hi").as_double(), 1.0);
}

const char* kStencil =
    "for (i = 1; i < n; i++) { for (j = 0; j < m; j++) a[i][j] = b[i][j]; }";
const char* kPointerChase =
    "while (node != NULL) { node->next->weight += hash(node->key); node = "
    "node->next; }";

TEST(Fingerprint, JsonRoundTripPreservesDistribution) {
  FingerprintBuilder builder;
  builder.observe(kStencil);
  builder.observe(kPointerChase);
  const Fingerprint original = builder.build();
  ASSERT_EQ(original.samples, 2u);

  const Fingerprint restored = Fingerprint::from_json(original.to_json());
  EXPECT_EQ(restored.samples, original.samples);
  EXPECT_DOUBLE_EQ(restored.mean_tokens, original.mean_tokens);
  EXPECT_DOUBLE_EQ(restored.var_tokens, original.var_tokens);
  EXPECT_DOUBLE_EQ(restored.mean_loop_depth, original.mean_loop_depth);
  for (std::size_t b = 0; b < kSketchBins; ++b)
    EXPECT_NEAR(restored.token_freq[b], original.token_freq[b], 1e-12) << b;
}

TEST(Fingerprint, PsiIsZeroAgainstItselfAndLargeAcrossDistributions) {
  FingerprintBuilder loops;
  for (int i = 0; i < 16; ++i) loops.observe(kStencil);
  FingerprintBuilder chases;
  for (int i = 0; i < 16; ++i) chases.observe(kPointerChase);

  const Fingerprint a = loops.build();
  const Fingerprint b = chases.build();
  EXPECT_NEAR(population_stability(a, a), 0.0, 1e-9);
  // Disjoint token universes: far beyond the PSI > 0.25 "drifted" line.
  EXPECT_GT(population_stability(a, b), 0.25);
  // Empty sides never blow up.
  EXPECT_DOUBLE_EQ(population_stability(Fingerprint{}, a), 0.0);
  EXPECT_DOUBLE_EQ(population_stability(a, Fingerprint{}), 0.0);
}

TEST(DriftMonitor, UnarmedAlwaysScoresZero) {
  DriftMonitor monitor(8);
  for (int i = 0; i < 20; ++i) monitor.observe(kPointerChase);
  EXPECT_FALSE(monitor.armed());
  EXPECT_EQ(monitor.observed(), 20u);
  EXPECT_DOUBLE_EQ(monitor.score(), 0.0);
}

TEST(DriftMonitor, SlidingWindowForgetsOldTraffic) {
  FingerprintBuilder reference;
  for (int i = 0; i < 16; ++i) reference.observe(kStencil);

  DriftMonitor monitor(4);
  monitor.set_reference(reference.build());
  ASSERT_TRUE(monitor.armed());

  // In-distribution traffic first: the window matches the reference.
  for (int i = 0; i < 8; ++i) monitor.observe(kStencil);
  EXPECT_EQ(monitor.filled(), 4u);
  const double stable = monitor.score();
  EXPECT_LT(stable, 0.1);

  // Enough drifted requests to evict every in-distribution sample: the
  // score must now reflect only the recent (drifted) window.
  for (int i = 0; i < 4; ++i) monitor.observe(kPointerChase);
  EXPECT_EQ(monitor.filled(), 4u);
  EXPECT_EQ(monitor.observed(), 12u);
  EXPECT_GT(monitor.score(), 0.25);
  EXPECT_GT(monitor.score(), stable);
}

VerdictSample make_sample(double p, bool positive, ProofVerdict proof) {
  VerdictSample sample;
  sample.p_directive = p;
  sample.positive = positive;
  sample.proof = proof;
  return sample;
}

TEST(InsightTracker, CountsDisagreementsPerDirection) {
  InsightTracker tracker;
  // Model says "parallelize", exact proof says loop-carried: dangerous.
  EXPECT_EQ(tracker.observe(kStencil,
                            make_sample(0.9, true, ProofVerdict::kDependent)),
            DisagreementKind::kModelParallelProofDependent);
  // Model withholds the directive from a proven-parallel loop: conservative.
  EXPECT_EQ(tracker.observe(kStencil,
                            make_sample(0.2, false, ProofVerdict::kParallel)),
            DisagreementKind::kModelSerialProofParallel);
  // Agreement.
  EXPECT_EQ(tracker.observe(kStencil,
                            make_sample(0.8, true, ProofVerdict::kParallel)),
            DisagreementKind::kNone);
  // No conclusive proof: histogram-only, never a disagreement.
  EXPECT_EQ(tracker.observe(kStencil,
                            make_sample(0.6, true, ProofVerdict::kInconclusive)),
            DisagreementKind::kNone);
  EXPECT_EQ(tracker.observe(kStencil,
                            make_sample(0.6, true, ProofVerdict::kNone)),
            DisagreementKind::kNone);

  EXPECT_EQ(tracker.samples(), 5u);
  EXPECT_EQ(tracker.disagreements(), 2u);
  EXPECT_NEAR(tracker.disagreement_rate(), 2.0 / 3.0, 1e-12);
}

TEST(InsightTracker, QualityJsonRoundTripsTheSnapshot) {
  InsightTracker tracker;
  FingerprintBuilder reference;
  for (int i = 0; i < 8; ++i) reference.observe(kStencil);
  tracker.set_reference(reference.build());
  for (int i = 0; i < 6; ++i)
    tracker.observe(kStencil, make_sample(0.9, true, ProofVerdict::kDependent));

  const Json doc = Json::parse(tracker.quality_json().dump());
  EXPECT_EQ(doc.at("schema").as_string(), "clpp.insight.v1");
  EXPECT_EQ(doc.at("samples").as_int(), 6);
  EXPECT_EQ(doc.at("disagreement").at("checked").as_int(), 6);
  EXPECT_EQ(doc.at("disagreement")
                .at("model_parallel_proof_dependent").as_int(), 6);
  EXPECT_DOUBLE_EQ(doc.at("disagreement").at("rate").as_double(), 1.0);
  EXPECT_TRUE(doc.at("drift").at("armed").as_bool());
  EXPECT_EQ(doc.at("drift").at("observed").as_int(), 6);
  EXPECT_LT(doc.at("drift").at("score").as_double(), 0.1);
  // The directive head is confidently wrong on every labeled sample.
  const Json& directive = doc.at("tasks").at("directive");
  EXPECT_EQ(directive.at("labeled").as_int(), 6);
  EXPECT_NEAR(directive.at("ece").as_double(), 0.9, 1e-12);
}

/// Minimal untrained advisor (mirrors serve_test): checkpoint mechanics are
/// independent of model quality.
std::unique_ptr<core::ParallelAdvisor> tiny_advisor() {
  constexpr std::size_t kMaxLen = 32;
  std::vector<std::vector<std::string>> documents = {
      tokenize::tokenize(kStencil, tokenize::Representation::kText)};
  tokenize::Vocabulary vocab = tokenize::Vocabulary::build(documents);
  core::PragFormerConfig config;
  config.encoder.vocab_size = vocab.size();
  config.encoder.max_seq = kMaxLen;
  config.encoder.dim = 8;
  config.encoder.heads = 2;
  config.encoder.layers = 1;
  config.encoder.ffn_dim = 16;
  Rng rng(7);
  auto directive = std::make_unique<core::PragFormer>(config, rng);
  auto private_model = std::make_unique<core::PragFormer>(config, rng);
  auto reduction = std::make_unique<core::PragFormer>(config, rng);
  return std::make_unique<core::ParallelAdvisor>(
      std::move(directive), std::move(private_model), std::move(reduction),
      std::move(vocab), tokenize::Representation::kText, kMaxLen);
}

TEST(AdvisorFingerprint, CheckpointRoundTripCarriesTheFingerprint) {
  auto advisor = tiny_advisor();
  FingerprintBuilder builder;
  builder.observe(kStencil);
  builder.observe(kPointerChase);
  advisor->set_fingerprint(builder.build());
  ASSERT_FALSE(advisor->fingerprint().empty());

  const core::ParallelAdvisor restored =
      core::ParallelAdvisor::deserialize(advisor->serialize());
  const Fingerprint& a = advisor->fingerprint();
  const Fingerprint& b = restored.fingerprint();
  EXPECT_EQ(b.samples, a.samples);
  EXPECT_DOUBLE_EQ(b.mean_tokens, a.mean_tokens);
  EXPECT_DOUBLE_EQ(b.mean_loop_depth, a.mean_loop_depth);
  for (std::size_t bin = 0; bin < kSketchBins; ++bin)
    EXPECT_NEAR(b.token_freq[bin], a.token_freq[bin], 1e-12) << bin;
}

TEST(AdvisorFingerprint, FingerprintlessAdvisorRoundTripsEmpty) {
  auto advisor = tiny_advisor();
  ASSERT_TRUE(advisor->fingerprint().empty());
  const core::ParallelAdvisor restored =
      core::ParallelAdvisor::deserialize(advisor->serialize());
  EXPECT_TRUE(restored.fingerprint().empty());
}

}  // namespace
}  // namespace clpp::insight
