// End-to-end pipeline test: on a reduced corpus the paper's headline
// orderings must hold — PragFormer > BoW > ComPar on the directive task,
// plus the characteristic ComPar precision/recall asymmetries.
//
// This is the repository's canary: if the generator, tokenizer, models, or
// S2S stack drift, the orderings break here before the benches run.
#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/pipeline.h"

namespace clpp::core {
namespace {

PipelineConfig fast_config() {
  PipelineConfig config;
  config.generator.size = 1200;
  config.generator.seed = 2023;
  config.encoder.dim = 48;
  config.encoder.heads = 4;
  config.encoder.layers = 2;
  config.encoder.ffn_dim = 96;
  config.max_len = 80;
  config.train.epochs = 6;
  config.train.batch_size = 32;
  config.train.lr = 7e-4f;
  config.mlm_pretrain = false;  // keep the canary fast
  return config;
}

class PipelineFixture : public ::testing::Test {
 protected:
  static Pipeline& pipeline() {
    static Pipeline instance(fast_config());
    return instance;
  }
};

TEST_F(PipelineFixture, VocabularyIsReasonablySized) {
  EXPECT_GT(pipeline().vocabulary().size(), 50u);
  EXPECT_LT(pipeline().vocabulary().size(), 2000u);
}

TEST_F(PipelineFixture, DirectiveTaskOrderingHolds) {
  TaskRun run = pipeline().train_task(corpus::Task::kDirective);
  const BinaryMetrics prag = run.test_metrics();
  const BinaryMetrics bow = pipeline().bow_metrics(corpus::Task::kDirective);
  const ComParEval compar = pipeline().compar_metrics(corpus::Task::kDirective);

  // Paper Table 7 shape: PragFormer > BoW > ComPar by F1.
  EXPECT_GT(prag.f1(), bow.f1())
      << "PragFormer " << prag.summary() << " vs BoW " << bow.summary();
  EXPECT_GT(bow.f1(), compar.metrics.f1())
      << "BoW " << bow.summary() << " vs ComPar " << compar.metrics.summary();
  EXPECT_GT(prag.f1(), 0.8);

  // §5.2: a noticeable fraction of snippets defeats ComPar's parsers.
  EXPECT_GT(compar.compile_failures, compar.total / 20);
}

TEST_F(PipelineFixture, ReductionTaskComParAsymmetry) {
  const ComParEval compar = pipeline().compar_metrics(corpus::Task::kReduction);
  // Table 10 shape: ComPar precision far above its recall. The canary
  // corpus' clause test split is small (~170 records), so the recall bound
  // is generous; bench_table9_10_clauses measures it on larger corpora
  // (typical value ~0.25 vs the paper's 0.16).
  EXPECT_GT(compar.metrics.precision(), 0.6);
  EXPECT_LT(compar.metrics.recall(), compar.metrics.precision() - 0.2);
  EXPECT_LT(compar.metrics.recall(), 0.6);
}

TEST_F(PipelineFixture, PrivateTaskComParIsWeakBothWays) {
  const ComParEval compar = pipeline().compar_metrics(corpus::Task::kPrivate);
  // Table 9 shape: explicit iterator privatization makes ComPar's private
  // predictions imprecise; overall quality is mediocre. (Recall varies a
  // lot on this small test split, so the assertion is on precision + F1.)
  EXPECT_LT(compar.metrics.precision(), 0.75);
  EXPECT_LT(compar.metrics.f1(), 0.8);
}

TEST_F(PipelineFixture, ClauseTasksLearnable) {
  TaskRun priv = pipeline().train_task(corpus::Task::kPrivate);
  EXPECT_GT(priv.test_metrics().f1(), 0.75);
  TaskRun red = pipeline().train_task(corpus::Task::kReduction);
  EXPECT_GT(red.test_metrics().f1(), 0.75);
}

TEST_F(PipelineFixture, SplitsAreDeterministicPerTask) {
  const corpus::Split& a = pipeline().split_for(corpus::Task::kDirective);
  const corpus::Split& b = pipeline().split_for(corpus::Task::kDirective);
  EXPECT_EQ(a.train, b.train);
}

TEST(AdvisorTest, AdvisesOnFreshSnippets) {
  // A canary-sized advisor is noisy on individual borderline snippets, so
  // the assertion is aggregate: most of a battery of clear-cut loops must
  // be advised correctly, and suggestions must be well-formed.
  ParallelAdvisor advisor = ParallelAdvisor::train(fast_config());

  const std::pair<const char*, bool> battery[] = {
      {"for (i = 0; i < n; i++) c[i] = a[i] + b[i];", true},
      {"for (i = 0; i < n; i++) y[i] = 2.0 * x[i] + y[i];", true},
      {"for (i = 0; i < n; i++) sum += a[i];", true},
      {"for (i = 0; i < n; i++) for (j = 0; j < m; j++) grid[i][j] = 0;", true},
      {"for (i = 0; i < n; i++) fprintf(fp, \"%d\\n\", buf[i]);", false},
      {"for (i = 1; i < n; i++) a[i] = a[i - 1] + b[i];", false},
      {"for (i = 0; i < limit; i++) { cur = cur->next; ret += cur->value; }",
       false},
      {"for (i = 0; i < 8; i++) buf[i] = 0;", false},
  };
  int correct = 0;
  for (const auto& [code, expected] : battery) {
    const Advice advice = advisor.advise(code);
    correct += advice.needs_directive == expected;
    // Structural invariants hold regardless of the verdict.
    if (advice.needs_directive) {
      EXPECT_NE(advice.suggestion.find("#pragma omp parallel for"),
                std::string::npos)
          << code;
    } else {
      EXPECT_TRUE(advice.suggestion.empty()) << code;
    }
  }
  EXPECT_GE(correct, 6) << "advisor got only " << correct << "/8 right";
}

}  // namespace
}  // namespace clpp::core
