// Corpus-wide property tests: invariants that must hold for *every*
// generated snippet, exercised over a sizable sample. These catch drift
// between the generator, the frontend, the tokenizer, and the analyzers —
// the cross-module contracts the experiments depend on.
#include <gtest/gtest.h>

#include "analysis/depend.h"
#include "codegen/generator.h"
#include "frontend/dfs.h"
#include "frontend/parser.h"
#include "frontend/printer.h"
#include "s2s/compar.h"
#include "tokenize/representation.h"
#include "tokenize/vocabulary.h"

namespace clpp {
namespace {

const corpus::Corpus& sample_corpus() {
  static const corpus::Corpus corpus = [] {
    codegen::GeneratorConfig config;
    config.size = 500;
    config.seed = 424242;
    return codegen::generate_corpus(config);
  }();
  return corpus;
}

TEST(CorpusProperty, EveryRecordParsesAndContainsALoop) {
  for (const auto& record : sample_corpus().records()) {
    frontend::NodePtr unit;
    ASSERT_NO_THROW(unit = frontend::parse_snippet(record.code)) << record.code;
    EXPECT_NE(s2s::find_target_loop(*unit), nullptr) << record.code;
  }
}

TEST(CorpusProperty, PrintParseRoundTripIsStable) {
  // parse(print(parse(code))) must produce the same DFS serialization —
  // the printer and parser agree on the whole generated language.
  for (const auto& record : sample_corpus().records()) {
    const frontend::NodePtr first = frontend::parse_snippet(record.code);
    const std::string printed = frontend::print_source(*first);
    frontend::NodePtr second;
    ASSERT_NO_THROW(second = frontend::parse_snippet(printed))
        << "printed form failed to parse:\n"
        << printed;
    EXPECT_EQ(frontend::dfs_lines(*first), frontend::dfs_lines(*second))
        << "original:\n"
        << record.code << "printed:\n"
        << printed;
  }
}

TEST(CorpusProperty, DirectiveTextAlwaysParsesAndMatchesLabels) {
  for (const auto& record : sample_corpus().records()) {
    if (!record.has_directive) continue;
    frontend::OmpDirective directive;
    ASSERT_NO_THROW(directive = record.directive()) << record.directive_text;
    EXPECT_TRUE(directive.is_loop_directive()) << record.directive_text;
    EXPECT_EQ(record.label_private, directive.has_private());
    EXPECT_EQ(record.label_reduction, directive.has_reduction());
  }
}

TEST(CorpusProperty, AllRepresentationsTokenizeEverySnippet) {
  for (const auto& record : sample_corpus().records()) {
    for (tokenize::Representation rep : tokenize::all_representations()) {
      std::vector<std::string> tokens;
      ASSERT_NO_THROW(tokens = tokenize::tokenize(record.code, rep))
          << tokenize::representation_name(rep) << ":\n"
          << record.code;
      EXPECT_FALSE(tokens.empty());
      // Labels must never leak into model inputs.
      for (const std::string& token : tokens) {
        EXPECT_NE(token, "omp") << record.code;
        EXPECT_NE(token, "pragma") << record.code;
      }
    }
  }
}

TEST(CorpusProperty, ReplacedRepresentationsContainNoPoolIdentifiers) {
  // After replacement, no original HPC-pool array names survive (builtin
  // library calls excepted).
  const std::set<std::string> pool = {"vec", "arr", "data", "grid", "mat"};
  for (const auto& record : sample_corpus().records()) {
    const auto tokens =
        tokenize::tokenize(record.code, tokenize::Representation::kRText);
    for (const std::string& token : tokens) EXPECT_FALSE(pool.count(token)) << token;
  }
}

TEST(CorpusProperty, TokenizationIsDeterministic) {
  const auto& record = sample_corpus().records().front();
  for (tokenize::Representation rep : tokenize::all_representations())
    EXPECT_EQ(tokenize::tokenize(record.code, rep),
              tokenize::tokenize(record.code, rep));
}

TEST(CorpusProperty, EncodeNeverExceedsMaxLenAndStartsWithCls) {
  std::vector<std::vector<std::string>> docs;
  for (const auto& record : sample_corpus().records())
    docs.push_back(tokenize::tokenize(record.code, tokenize::Representation::kText));
  const auto vocab = tokenize::Vocabulary::build(docs);
  for (const auto& doc : docs) {
    const auto ids = vocab.encode(doc, 48);
    EXPECT_LE(ids.size(), 48u);
    EXPECT_GE(ids.size(), 1u);
    EXPECT_EQ(ids[0], tokenize::Vocabulary::kCls);
    for (std::int32_t id : ids) {
      EXPECT_GE(id, 0);
      EXPECT_LT(static_cast<std::size_t>(id), vocab.size());
    }
  }
}

TEST(CorpusProperty, VocabularyPersistenceRoundTrip) {
  std::vector<std::vector<std::string>> docs;
  for (std::size_t i = 0; i < 50; ++i)
    docs.push_back(tokenize::tokenize(sample_corpus().at(i).code,
                                      tokenize::Representation::kText));
  const auto vocab = tokenize::Vocabulary::build(docs);
  const auto restored = tokenize::Vocabulary::from_tokens(vocab.tokens());
  EXPECT_EQ(restored.size(), vocab.size());
  for (const auto& doc : docs)
    for (const auto& token : doc) EXPECT_EQ(restored.id_of(token), vocab.id_of(token));
}

TEST(CorpusProperty, AnalyzerVerdictsConsistentWithCleanFamilyLabels) {
  // On hazard-free families the aggressive analyzer (struct access allowed,
  // unknown calls assumed pure, min/max recognized) must agree with the
  // generator's ground truth. Families excluded below are mislabeled *by
  // design* (unannotated-but-parallelizable, profitability judgments, or
  // noise-flipped records).
  // "matmul" is skipped because its linearized variant (G[(i*NL)+j]) is
  // non-affine by design — the Table 8 row-4 pitfall the analyzer must NOT
  // be able to crack.
  const std::set<std::string> skip = {"unannotated", "small_trip", "io_loop",
                                      "alloc_loop", "rand_loop", "pointer_chase",
                                      "goto_cleanup", "string_ops", "matmul"};
  codegen::GeneratorConfig config;
  config.size = 400;
  config.seed = 31337;
  config.label_noise = 0.0;
  const corpus::Corpus clean = codegen::generate_corpus(config);

  analysis::AnalyzerOptions options;
  options.assume_unknown_calls_pure = true;
  options.bail_on_struct_access = false;
  options.recognize_minmax_reduction = true;

  std::size_t agree = 0, total = 0;
  for (const auto& record : clean.records()) {
    if (skip.count(record.family)) continue;
    const frontend::NodePtr unit = frontend::parse_snippet(record.code);
    const frontend::Node* loop = s2s::find_target_loop(*unit);
    ASSERT_NE(loop, nullptr);
    const analysis::SideEffectOracle oracle(*unit);
    const auto verdict = analysis::DependenceAnalyzer(oracle, options).analyze(*loop);
    ++total;
    agree += (verdict.parallelizable == record.has_directive);
  }
  // io/alloc/etc. already excluded; what remains should agree near-perfectly.
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.95)
      << agree << "/" << total;
}

TEST(CorpusProperty, ComParNeverCrashesOnTheCorpus) {
  const s2s::ComPar compar;
  for (const auto& record : sample_corpus().records())
    EXPECT_NO_THROW(compar.process_source(record.code)) << record.code;
}

}  // namespace
}  // namespace clpp
