// Ablation: maximum input sequence length.
//
// The paper fixes max_len = 110 because that is the longest snippet in its
// corpus (§4.3). This bench sweeps the cap and shows the accuracy cost of
// truncation — the effect that also explains part of the AST
// representation's disadvantage (its serialization is longer, so a fixed
// cap discards more of each snippet).
#include "bench/common.h"
#include "support/csv.h"

using namespace clpp;

int main(int argc, char** argv) {
  ArgParser parser("bench_ablation_seqlen", "ablation: max sequence length");
  bench::add_common_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  const bench::BenchOptions options = bench::read_common_options(parser);
  bench::print_banner("Ablation: maximum sequence length (paper uses 110)", options);

  CsvWriter csv({"max_len", "test_f1", "test_accuracy"});
  TextTable table({"max_len", "Precision", "Recall", "F1"});
  for (const std::size_t max_len : {24ul, 48ul, 110ul}) {
    core::PipelineConfig config = bench::pipeline_config(options);
    config.max_len = max_len;
    std::printf("training with max_len=%zu...\n", max_len);
    Stopwatch timer;
    core::Pipeline pipeline(config);
    core::TaskRun run = pipeline.train_task(corpus::Task::kDirective);
    const core::BinaryMetrics metrics = run.test_metrics();
    std::printf("  %.1fs; %s\n", timer.seconds(), metrics.summary().c_str());
    bench::add_metric_row(table, std::to_string(max_len), metrics);
    csv.add_row({std::to_string(max_len), fixed(metrics.f1(), 4),
                 fixed(metrics.accuracy(), 4)});
  }
  std::printf("\n%s\n", table.str().c_str());
  std::printf("expected shape: heavy truncation (24) loses accuracy; the "
              "paper's 110 cap is safe for text tokens.\n");

  const std::string csv_path = options.out_dir + "/ablation_seqlen.csv";
  csv.write_file(csv_path);
  std::printf("csv: %s\n", csv_path.c_str());
  return 0;
}
