// Micro-benchmarks (google-benchmark): throughput of the substrate kernels
// that dominate experiment wall-clock — GEMM, attention, the C frontend,
// tokenization, and the dependence analyzer.
#include <benchmark/benchmark.h>

#include "analysis/depend.h"
#include "frontend/parser.h"
#include "nn/attention.h"
#include "s2s/compar.h"
#include "tensor/ops.h"
#include "tokenize/representation.h"

namespace {

using namespace clpp;

void BM_GemmNN(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTransB(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(a, b, c, false, true);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
}
BENCHMARK(BM_GemmTransB)->Arg(128);

void BM_AttentionForward(benchmark::State& state) {
  const std::size_t seq = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 64;
  Rng rng(3);
  nn::MultiHeadSelfAttention attn("bench", dim, 4, rng);
  const Tensor x = Tensor::randn({8 * seq, dim}, rng);
  const std::vector<int> lengths(8, static_cast<int>(seq));
  for (auto _ : state) {
    Tensor y = attn.forward(x, 8, seq, lengths, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 * seq);
}
BENCHMARK(BM_AttentionForward)->Arg(32)->Arg(110);

const char* kParseSnippet =
    "double norm(double *v, int n) { double s = 0; for (int i = 0; i < n; i++) "
    "s += v[i] * v[i]; return s; }\n"
    "for (i = 1; i < rows - 1; i++)\n"
    "    for (j = 1; j < cols - 1; j++)\n"
    "        b[i][j] = 0.25 * (a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1]);\n";

void BM_ParseSnippet(benchmark::State& state) {
  for (auto _ : state) {
    auto unit = frontend::parse_snippet(kParseSnippet);
    benchmark::DoNotOptimize(unit.get());
  }
}
BENCHMARK(BM_ParseSnippet);

void BM_TokenizeText(benchmark::State& state) {
  for (auto _ : state) {
    auto tokens = tokenize::tokenize(kParseSnippet, tokenize::Representation::kText);
    benchmark::DoNotOptimize(tokens.data());
  }
}
BENCHMARK(BM_TokenizeText);

void BM_TokenizeAst(benchmark::State& state) {
  for (auto _ : state) {
    auto tokens = tokenize::tokenize(kParseSnippet, tokenize::Representation::kRAst);
    benchmark::DoNotOptimize(tokens.data());
  }
}
BENCHMARK(BM_TokenizeAst);

void BM_DependenceAnalysis(benchmark::State& state) {
  const auto unit = frontend::parse_snippet(kParseSnippet);
  const frontend::Node* loop = s2s::find_target_loop(*unit);
  const analysis::SideEffectOracle oracle(*unit);
  const analysis::DependenceAnalyzer analyzer(oracle, {});
  for (auto _ : state) {
    auto verdict = analyzer.analyze(*loop);
    benchmark::DoNotOptimize(&verdict);
  }
}
BENCHMARK(BM_DependenceAnalysis);

void BM_ComParEndToEnd(benchmark::State& state) {
  const s2s::ComPar compar;
  for (auto _ : state) {
    auto result = compar.process_source(kParseSnippet);
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(BM_ComParEndToEnd);

}  // namespace

BENCHMARK_MAIN();
