// Reproduces Table 4 of the paper: train/validation/test sizes of the
// directive and clause datasets under the 75/12.5/12.5 split.
#include "bench/common.h"

using namespace clpp;

int main(int argc, char** argv) {
  ArgParser parser("bench_table4_datasets", "Table 4: dataset sizes");
  bench::add_common_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  const bench::BenchOptions options = bench::read_common_options(parser);
  bench::print_banner("Table 4: examples per dataset", options);

  core::PipelineConfig config = bench::pipeline_config(options);
  config.generator.size = 28374;  // Table 4 derives from the full corpus
  core::Pipeline pipeline(config);

  const corpus::Split& directive = pipeline.split_for(corpus::Task::kDirective);
  // The paper's single "Clause" dataset serves both clause tasks; ours uses
  // the private split as the canonical clause split (the reduction split
  // has the same population size).
  const corpus::Split& clause = pipeline.split_for(corpus::Task::kPrivate);

  TextTable table({"Dataset", "Directive", "Clause", "Paper directive", "Paper clause"});
  table.add_row({"Training", with_commas((long long)directive.train.size()),
                 with_commas((long long)clause.train.size()), "21,280", "9,861"});
  table.add_row({"Validation", with_commas((long long)directive.validation.size()),
                 with_commas((long long)clause.validation.size()), "3,547", "1,644"});
  table.add_row({"Test", with_commas((long long)directive.test.size()),
                 with_commas((long long)clause.test.size()), "3,547", "1,644"});
  std::printf("%s\n", table.str().c_str());
  return 0;
}
