// Reproduces Table 6 of the paper: type-level corpus statistics per code
// representation — train vocabulary size, OOV types in validation+test,
// and average token count per snippet.
#include "bench/common.h"
#include "core/dataset.h"
#include "support/csv.h"

using namespace clpp;

int main(int argc, char** argv) {
  ArgParser parser("bench_table6_vocab", "Table 6: type-level corpus statistics");
  bench::add_common_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  const bench::BenchOptions options = bench::read_common_options(parser);
  bench::print_banner("Table 6: type-level corpus statistics", options);

  core::PipelineConfig config = bench::pipeline_config(options);
  config.generator.size = options.paper_scale() ? 28374 : 6000;
  const corpus::Corpus corpus = codegen::generate_corpus(config.generator);
  Rng split_rng(config.split_seed);
  const corpus::Split split =
      corpus::make_split(corpus, corpus::Task::kDirective, split_rng);

  TextTable table({"", "Text", "R-Text", "AST", "R-AST"});
  std::vector<std::string> vocab_row = {"Train vocab size"};
  std::vector<std::string> oov_row = {"OOV types"};
  std::vector<std::string> len_row = {"Avg. length"};
  CsvWriter csv({"representation", "train_vocab", "oov_types", "avg_length"});

  for (tokenize::Representation rep : tokenize::all_representations()) {
    const auto train_docs = core::tokenize_records(corpus, split.train, rep);
    auto held_out_docs = core::tokenize_records(corpus, split.validation, rep);
    for (auto& doc : core::tokenize_records(corpus, split.test, rep))
      held_out_docs.push_back(std::move(doc));

    const tokenize::Vocabulary vocab = tokenize::Vocabulary::build(train_docs);
    const std::size_t oov = vocab.count_oov_types(held_out_docs);
    std::size_t token_total = 0;
    for (const auto& doc : train_docs) token_total += doc.size();
    const double avg_len =
        static_cast<double>(token_total) / static_cast<double>(train_docs.size());

    vocab_row.push_back(with_commas((long long)vocab.size()));
    oov_row.push_back(with_commas((long long)oov));
    len_row.push_back(fixed(avg_len, 0));
    csv.add_row({tokenize::representation_name(rep), std::to_string(vocab.size()),
                 std::to_string(oov), fixed(avg_len, 2)});
  }
  table.add_row(vocab_row);
  table.add_row(oov_row);
  table.add_row(len_row);
  std::printf("%s\n", table.str().c_str());
  std::printf("paper (28k GitHub corpus): vocab 6,427/2,424/5,261/3,409; "
              "OOV 398/226/348/309; avg len 33/30/37/35\n");
  std::printf("expected shape: replacement shrinks the vocabulary; AST "
              "representations are longer than text.\n");

  const std::string csv_path = options.out_dir + "/table6_vocab.csv";
  csv.write_file(csv_path);
  std::printf("csv: %s\n", csv_path.c_str());
  return 0;
}
