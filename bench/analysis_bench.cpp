// Dependence-engine and lint throughput (google-benchmark).
//
// The v2 engine (analysis/ddtest.h) does strictly more work per access
// pair than the seed SIV test — direction/distance vectors per nest level,
// GCD + Banerjee interval bounds per direction class — so this harness
// tracks what that costs on the two inputs that matter: the generated
// corpus the audit gate lints on every CI run, and the hand-verified
// corpus/realworld/ kernels (gemm's imperfect nest with linearized
// subscripts is the stress case). Exported by run_benches.sh into
// bench_artifacts/ and compared against bench_baseline/ by check_perf.sh.
#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/depend.h"
#include "analysis/sideeffects.h"
#include "codegen/generator.h"
#include "frontend/parser.h"
#include "lint/audit.h"
#include "lint/linter.h"

namespace {

using namespace clpp;

const std::vector<std::string>& realworld_files() {
  static const std::vector<std::string> files = {
      "gemm.c", "atax.c", "mvt.c", "gemver.c", "jacobi-1d.c", "non_parallel.c"};
  return files;
}

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(CLPP_REALWORLD_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("missing fixture: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Every for loop of every realworld fixture, parsed once.
struct RealworldLoops {
  std::vector<frontend::NodePtr> units;
  std::vector<std::pair<const frontend::Node*, const frontend::Node*>> loops;

  RealworldLoops() {
    for (const std::string& name : realworld_files()) {
      units.push_back(frontend::parse_snippet(read_fixture(name)));
      const frontend::Node* unit = units.back().get();
      frontend::walk(*unit, [&](const frontend::Node& node, int) {
        if (node.kind == frontend::NodeKind::kFor) loops.push_back({unit, &node});
      });
    }
  }
};

/// One analyzer pass over every realworld loop; `exact` picks the engine.
void BM_AnalyzeRealworld(benchmark::State& state) {
  static const RealworldLoops fixtures;
  analysis::AnalyzerOptions options;
  options.exact_dependence_engine = state.range(0) != 0;
  std::size_t verdicts = 0;
  for (auto _ : state) {
    const frontend::Node* last_unit = nullptr;
    std::unique_ptr<analysis::SideEffectOracle> oracle;
    for (const auto& [unit, loop] : fixtures.loops) {
      if (unit != last_unit) {
        oracle = std::make_unique<analysis::SideEffectOracle>(*unit);
        last_unit = unit;
      }
      analysis::DependenceAnalyzer analyzer(*oracle, options);
      const analysis::LoopVerdict verdict = analyzer.analyze(*loop);
      benchmark::DoNotOptimize(verdict.parallelizable);
      ++verdicts;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(verdicts));
  state.SetLabel(state.range(0) != 0 ? "v2" : "seed-engine");
}
BENCHMARK(BM_AnalyzeRealworld)->Arg(1)->Arg(0);

/// Raw NestContext construction + pair testing on the linearized-gemm form
/// that exercises the identical-subscript rule and Banerjee bounds.
void BM_NestContextLinearizedGemm(benchmark::State& state) {
  static const frontend::NodePtr unit = frontend::parse_snippet(
      "for (i = 0; i < ni; i++) {\n"
      "  for (j = 0; j < nj; j++)\n"
      "    c[i * nj + j] = c[i * nj + j] * beta;\n"
      "  for (k = 0; k < nk; k++)\n"
      "    for (j = 0; j < nj; j++)\n"
      "      c[i * nj + j] = c[i * nj + j] + alpha * a[i * nk + k] * b[k * nj + j];\n"
      "}\n");
  const frontend::Node* loop = nullptr;
  frontend::walk(*unit, [&](const frontend::Node& node, int) {
    if (loop == nullptr && node.kind == frontend::NodeKind::kFor) loop = &node;
  });
  const analysis::AccessSet accesses = analysis::collect_accesses(loop->child(3));
  std::vector<const analysis::Access*> refs;
  for (const analysis::Access& access : accesses.accesses)
    if (access.is_array && access.variable == "c") refs.push_back(&access);
  std::size_t pairs = 0;
  for (auto _ : state) {
    const analysis::NestContext context(*loop);
    for (const analysis::Access* src : refs)
      for (const analysis::Access* snk : refs) {
        if (!src->is_write && !snk->is_write) continue;
        const analysis::PairResult result = context.test_pair(*src, *snk);
        benchmark::DoNotOptimize(result.possible);
        ++pairs;
      }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
}
BENCHMARK(BM_NestContextLinearizedGemm);

/// Full-lint throughput over a generated corpus slice, simd families
/// included — the inner loop of scripts/check_lint_audit.sh.
void BM_LintGeneratedCorpus(benchmark::State& state) {
  codegen::GeneratorConfig config;
  config.size = static_cast<std::size_t>(state.range(0));
  config.seed = 17;
  config.buggy_directive_rate = 0.15;
  config.simd_families = true;
  const corpus::Corpus corpus = codegen::generate_corpus(config);
  for (auto _ : state) {
    const lint::AuditReport report = lint::audit_labels(corpus);
    benchmark::DoNotOptimize(report.bugs_caught);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus.size()));
}
BENCHMARK(BM_LintGeneratedCorpus)->Arg(64)->Arg(256);

/// lint_source end-to-end (parse + analyze + rules) on the realworld files.
void BM_LintRealworldSources(benchmark::State& state) {
  static const std::vector<std::string> sources = [] {
    std::vector<std::string> texts;
    for (const std::string& name : realworld_files())
      texts.push_back(read_fixture(name));
    return texts;
  }();
  const lint::Linter linter;
  std::size_t linted = 0;
  for (auto _ : state) {
    for (const std::string& source : sources) {
      const lint::LintReport report = linter.lint_source(source);
      benchmark::DoNotOptimize(report.diagnostics.size());
      ++linted;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(linted));
}
BENCHMARK(BM_LintRealworldSources);

}  // namespace

BENCHMARK_MAIN();
