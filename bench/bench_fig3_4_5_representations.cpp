// Reproduces Figures 3, 4, and 5 of the paper in one run: for each of the
// four code representations, train PragFormer on the directive task and
// record per-epoch validation accuracy (Fig 3), training loss (Fig 4), and
// validation loss (Fig 5).
//
// Expected shape (paper §5.1): Text >= R-Text > AST >= R-AST on validation
// accuracy; validation loss bottoms out and starts rising (the overfitting
// knee the paper locates at epochs 7-9).
#include "bench/common.h"
#include "support/csv.h"
#include "support/plot.h"

using namespace clpp;

int main(int argc, char** argv) {
  ArgParser parser("bench_fig3_4_5", "Figures 3-5: representation study");
  bench::add_common_options(parser);
  parser.add_int("epochs", 0, "override epoch count (0 = per-scale default)");
  parser.add_flag("mlm", "pretrain each model with MLM on its own representation");
  if (!parser.parse(argc, argv)) return 0;
  const bench::BenchOptions options = bench::read_common_options(parser);
  bench::print_banner("Figures 3-5: accuracy/loss vs epoch per representation",
                      options);

  std::vector<PlotSeries> accuracy, train_loss, val_loss;
  CsvWriter csv({"representation", "epoch", "val_accuracy", "train_loss", "val_loss"});
  std::map<std::string, double> final_accuracy;

  for (tokenize::Representation rep : tokenize::all_representations()) {
    core::PipelineConfig config = bench::pipeline_config(options);
    config.representation = rep;
    // Default: train from scratch, matching the paper's setting (DeepSCC is
    // pretrained on *text*, so its AST models get no syntax-aware
    // initialization). Passing --mlm pretrains each model with MLM on its
    // own representation — which confirms the paper's §5.1 hypothesis that
    // AST representations catch up "for models whose pre-training step
    // includes this syntax".
    config.mlm_pretrain = parser.get_flag("mlm");
    if (const auto epochs = parser.get_int("epochs"); epochs > 0)
      config.train.epochs = static_cast<std::size_t>(epochs);
    const std::string name = tokenize::representation_name(rep);
    std::printf("training PragFormer on %s...\n", name.c_str());
    Stopwatch timer;

    core::Pipeline pipeline(config);
    core::TaskRun run = pipeline.train_task(corpus::Task::kDirective);

    std::vector<double> acc, tl, vl;
    for (const core::EpochCurve& curve : run.curves) {
      acc.push_back(curve.val_accuracy);
      tl.push_back(curve.train_loss);
      vl.push_back(curve.val_loss);
      csv.add_row({name, std::to_string(curve.epoch + 1),
                   fixed(curve.val_accuracy, 4), fixed(curve.train_loss, 4),
                   fixed(curve.val_loss, 4)});
    }
    final_accuracy[name] = acc.back();
    std::printf("  %s: final val acc %.3f (vocab %zu, %.1fs)\n", name.c_str(),
                acc.back(), pipeline.vocabulary().size(), timer.seconds());
    accuracy.push_back({name, std::move(acc)});
    train_loss.push_back({name, std::move(tl)});
    val_loss.push_back({name, std::move(vl)});
  }

  auto show = [](const char* title, const char* ylabel,
                 const std::vector<PlotSeries>& series) {
    AsciiPlot plot(title, "epoch", ylabel);
    for (const PlotSeries& s : series) plot.add_series(s.name, s.ys);
    std::printf("\n%s\n", plot.str().c_str());
  };
  show("Figure 3: validation accuracy per representation", "val accuracy", accuracy);
  show("Figure 4: training loss per representation", "train loss", train_loss);
  show("Figure 5: validation loss per representation", "val loss", val_loss);

  std::printf("final accuracies: ");
  for (const auto& [name, acc] : final_accuracy) std::printf("%s=%.3f ", name.c_str(), acc);
  std::printf("\npaper: Text 0.87, R-Text 0.85, AST 0.82, R-AST 0.77\n");

  const std::string csv_path = options.out_dir + "/fig3_4_5_curves.csv";
  csv.write_file(csv_path);
  std::printf("csv: %s\n", csv_path.c_str());
  return 0;
}
