// Reproduces Table 3 of the paper: statistics of the (synthetic) Open-OMP
// corpus, printed side by side with the paper's reported values.
#include "bench/common.h"
#include "codegen/generator.h"

using namespace clpp;

int main(int argc, char** argv) {
  ArgParser parser("bench_table3_corpus", "Table 3: corpus statistics");
  bench::add_common_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  const bench::BenchOptions options = bench::read_common_options(parser);
  bench::print_banner("Table 3: statistics of the corpus", options);

  codegen::GeneratorConfig config;
  // Table 3 is about the corpus itself; generate the full 28,374 snippets
  // at both scales (generation is cheap — it's training that is not).
  config.size = 28374;
  config.seed = options.seed;
  Stopwatch timer;
  const corpus::Corpus corpus = codegen::generate_corpus(config);
  const corpus::CorpusStats stats = corpus.stats();
  std::printf("generated %s snippets in %.2fs\n\n", with_commas((long long)corpus.size()).c_str(),
              timer.seconds());

  TextTable table({"Description", "Ours", "Paper"});
  table.add_row({"Total code snippets", with_commas((long long)stats.total), "28,374"});
  table.add_row({"For loops with OpenMP directives",
                 with_commas((long long)stats.with_directive), "13,139"});
  table.add_row({"For loops without OpenMP",
                 with_commas((long long)stats.without_directive), "15,235"});
  table.add_row({"Schedule static", with_commas((long long)stats.schedule_static),
                 "11,166"});
  table.add_row({"Schedule dynamic", with_commas((long long)stats.schedule_dynamic),
                 "1,973"});
  table.add_row({"Reduction", with_commas((long long)stats.reduction), "3,865"});
  table.add_row({"Private", with_commas((long long)stats.private_clause), "6,034"});
  std::printf("%s\n", table.str().c_str());

  // Family breakdown (provenance; not in the paper, useful for auditing).
  std::map<std::string, std::size_t> family_counts;
  for (const auto& record : corpus.records()) ++family_counts[record.family];
  TextTable families({"Family", "Count"});
  for (const auto& [name, count] : family_counts)
    families.add_row({name, with_commas((long long)count)});
  std::printf("provenance by template family:\n%s\n", families.str().c_str());
  return 0;
}
