// Reproduces Table 7 of the paper: PragFormer vs BoW+Logistic vs ComPar on
// the directive classification task (RQ1), including the §5.2 detail that
// ComPar fails to compile a noticeable share of the test set (fallback
// negative).
#include "bench/common.h"
#include "support/csv.h"

using namespace clpp;

int main(int argc, char** argv) {
  ArgParser parser("bench_table7_directive", "Table 7: directive classification");
  bench::add_common_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  const bench::BenchOptions options = bench::read_common_options(parser);
  bench::print_banner("Table 7: identifying the need for an OpenMP directive",
                      options);

  core::Pipeline pipeline(bench::pipeline_config(options));

  std::printf("training PragFormer (with MLM-pretrained encoder)...\n");
  Stopwatch timer;
  core::TaskRun run = pipeline.train_task(corpus::Task::kDirective);
  const core::BinaryMetrics prag = run.test_metrics();
  std::printf("  done in %.1fs (%s)\n", timer.seconds(), prag.summary().c_str());

  std::printf("training BoW + logistic regression...\n");
  const core::BinaryMetrics bow = pipeline.bow_metrics(corpus::Task::kDirective);

  std::printf("running the ComPar S2S ensemble on the test set...\n");
  const core::ComParEval compar = pipeline.compar_metrics(corpus::Task::kDirective);

  TextTable table({"", "Precision", "Recall", "F1"});
  bench::add_metric_row(table, "PragFormer", prag);
  bench::add_metric_row(table, "BoW + Logistic", bow);
  bench::add_metric_row(table, "ComPar", compar.metrics);
  std::printf("\n%s\n", table.str().c_str());
  std::printf("paper: PragFormer 0.84/0.85/0.84; BoW 0.78/0.75/0.76; "
              "ComPar 0.35/0.52/0.43\n");
  std::printf("ComPar failed to compile %zu of %zu test snippets (%.1f%%); "
              "paper: 526/3,547 (14.8%%)\n",
              compar.compile_failures, compar.total,
              100.0 * compar.compile_failures / compar.total);

  CsvWriter csv({"system", "precision", "recall", "f1"});
  for (const auto& [name, m] :
       std::vector<std::pair<std::string, const core::BinaryMetrics&>>{
           {"PragFormer", prag}, {"BoW", bow}, {"ComPar", compar.metrics}})
    csv.add_row({name, fixed(m.precision(), 4), fixed(m.recall(), 4), fixed(m.f1(), 4)});
  const std::string csv_path = options.out_dir + "/table7_directive.csv";
  csv.write_file(csv_path);
  std::printf("csv: %s\n", csv_path.c_str());
  return 0;
}
