// Reproduces Tables 1 and 2 of the paper: the S2S pitfall examples and
// their AST representations.
//
// Example #1: two independent consecutive loops — the S2S compiler opens a
// parallel region per loop (thread team spawned twice) instead of one
// region with nowait.
// Example #2: an unbalanced if-guarded body — the S2S compiler emits the
// default schedule(static) instead of schedule(dynamic).
#include "bench/common.h"
#include "frontend/dfs.h"
#include "frontend/parser.h"
#include "s2s/compiler.h"

using namespace clpp;

namespace {

constexpr const char* kExample1 =
    "for (i = 0; i <= N; i++)\n"
    "    A[i] = i;\n"
    "for (i = 0; i <= N; i++)\n"
    "    B[i] = B[i] * 2;\n";

constexpr const char* kExample2 =
    "int MoreCalc(int i) { return i % 3; }\n"
    "int Calc(int i) { return i * i; }\n"
    "for (i = 0; i <= N; i++)\n"
    "    if (MoreCalc(i))\n"
    "        out[i] = Calc(i);\n";

void show_example(const char* title, const char* code, const char* commentary) {
  std::printf("--- %s ---\n", title);
  std::printf("input:\n%s\n", code);
  const s2s::S2SCompiler cetus(s2s::cetus_profile());
  std::printf("S2S (cetus personality) output:\n%s\n", cetus.annotate(code).c_str());
  std::printf("pitfall: %s\n\n", commentary);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("bench_table1_2_pitfalls", "Tables 1 & 2: S2S pitfalls + ASTs");
  bench::add_common_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  const bench::BenchOptions options = bench::read_common_options(parser);
  bench::print_banner("Table 1+2: pitfalls of S2S automatic parallelization", options);

  // Table 1, example #1: count the parallel regions the S2S opens.
  {
    const frontend::NodePtr unit = frontend::parse_snippet(kExample1);
    const s2s::S2SCompiler cetus(s2s::cetus_profile());
    int regions = 0;
    for (const auto& item : unit->children) {
      if (item->kind != frontend::NodeKind::kFor) continue;
      const auto result = cetus.process_loop(*unit, *item);
      regions += result.parallelized() && result.directive->parallel;
    }
    show_example("Table 1 example #1 (consecutive independent loops)", kExample1,
                 "thread team spawned per loop; a single enclosing parallel "
                 "region with nowait would avoid the overhead");
    std::printf("parallel regions opened by the S2S: %d (optimal: 1)\n\n", regions);
  }

  // Table 1, example #2: schedule choice on unbalanced work.
  {
    show_example("Table 1 example #2 (unbalanced conditional work)", kExample2,
                 "S2S emits the default schedule(static); the if-guarded body "
                 "calls for schedule(dynamic)");
  }

  // Table 2: AST representations of both examples.
  std::printf("--- Table 2: AST representations ---\n");
  for (const char* code : {kExample1, kExample2}) {
    const frontend::NodePtr unit = frontend::parse_snippet(code);
    std::printf("%s\n", frontend::dfs_lines(*unit).c_str());
  }
  return 0;
}
