// Reproduces Tables 9 and 10 of the paper: private and reduction clause
// classification (RQ2), comparing PragFormer, BoW, and ComPar over the
// clause dataset (records that carry a directive).
#include "bench/common.h"
#include "support/csv.h"

using namespace clpp;

int main(int argc, char** argv) {
  ArgParser parser("bench_table9_10_clauses", "Tables 9-10: clause classification");
  bench::add_common_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  const bench::BenchOptions options = bench::read_common_options(parser);
  bench::print_banner("Tables 9 & 10: private / reduction clause identification",
                      options);

  core::Pipeline pipeline(bench::pipeline_config(options));
  CsvWriter csv({"task", "system", "precision", "recall", "f1"});

  struct PaperRow {
    const char* prag;
    const char* bow;
    const char* compar;
  };
  const std::map<corpus::Task, PaperRow> paper = {
      {corpus::Task::kPrivate, {"0.90/0.91/0.90", "0.83/0.79/0.82", "0.50/0.33/0.40"}},
      {corpus::Task::kReduction, {"0.92/0.96/0.94", "0.84/0.85/0.84", "0.86/0.16/0.27"}},
  };

  for (corpus::Task task : {corpus::Task::kPrivate, corpus::Task::kReduction}) {
    const std::string name = corpus::task_name(task);
    std::printf("--- %s clause (Table %s) ---\n", name.c_str(),
                task == corpus::Task::kPrivate ? "9" : "10");
    std::printf("training PragFormer...\n");
    core::TaskRun run = pipeline.train_task(task);
    const core::BinaryMetrics prag = run.test_metrics();
    const core::BinaryMetrics bow = pipeline.bow_metrics(task);
    const core::ComParEval compar = pipeline.compar_metrics(task);

    TextTable table({"", "Precision", "Recall", "F1"});
    bench::add_metric_row(table, "PragFormer", prag);
    bench::add_metric_row(table, "BoW + Logistic", bow);
    bench::add_metric_row(table, "ComPar", compar.metrics);
    std::printf("%s", table.str().c_str());
    const PaperRow& row = paper.at(task);
    std::printf("paper: PragFormer %s; BoW %s; ComPar %s\n\n", row.prag, row.bow,
                row.compar);

    for (const auto& [system, m] :
         std::vector<std::pair<std::string, const core::BinaryMetrics&>>{
             {"PragFormer", prag}, {"BoW", bow}, {"ComPar", compar.metrics}})
      csv.add_row({name, system, fixed(m.precision(), 4), fixed(m.recall(), 4),
                   fixed(m.f1(), 4)});
  }

  const std::string csv_path = options.out_dir + "/table9_10_clauses.csv";
  csv.write_file(csv_path);
  std::printf("csv: %s\n", csv_path.c_str());
  return 0;
}
