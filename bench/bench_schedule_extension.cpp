// Extension bench (paper §6 future work): predicting the *scheduling
// construct* — schedule(dynamic) vs the static default — for loops that
// already carry a directive. The paper lists this as the next step after
// clause classification ("fine-tune the OpenMP directives by inserting the
// scheduling construct"); CLPP implements it as a fourth PragFormer task.
#include "bench/common.h"
#include "support/csv.h"

using namespace clpp;

int main(int argc, char** argv) {
  ArgParser parser("bench_schedule_extension",
                   "extension: schedule(dynamic) prediction");
  bench::add_common_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  const bench::BenchOptions options = bench::read_common_options(parser);
  bench::print_banner("Extension: schedule(dynamic) vs static (paper §6 future work)",
                      options);

  core::Pipeline pipeline(bench::pipeline_config(options));

  std::printf("training PragFormer on the schedule task...\n");
  Stopwatch timer;
  core::TaskRun run = pipeline.train_task(corpus::Task::kSchedule);
  const core::BinaryMetrics prag = run.test_metrics();
  std::printf("  done in %.1fs\n", timer.seconds());

  const core::BinaryMetrics bow = pipeline.bow_metrics(corpus::Task::kSchedule);
  const core::ComParEval compar = pipeline.compar_metrics(corpus::Task::kSchedule);

  TextTable table({"", "Precision", "Recall", "F1"});
  bench::add_metric_row(table, "PragFormer", prag);
  bench::add_metric_row(table, "BoW + Logistic", bow);
  bench::add_metric_row(table, "ComPar", compar.metrics);
  std::printf("\n%s\n", table.str().c_str());
  std::printf("positive class = schedule(dynamic); %zu of %zu test loops are "
              "dynamic.\n",
              static_cast<std::size_t>(prag.tp + prag.fn), prag.total());
  std::printf("note: the deterministic S2S never suggests schedule(dynamic) "
              "(Table 1 example 2), so its recall here is structural, not "
              "statistical.\n");

  CsvWriter csv({"system", "precision", "recall", "f1"});
  for (const auto& [name, m] :
       std::vector<std::pair<std::string, const core::BinaryMetrics&>>{
           {"PragFormer", prag}, {"BoW", bow}, {"ComPar", compar.metrics}})
    csv.add_row({name, fixed(m.precision(), 4), fixed(m.recall(), 4), fixed(m.f1(), 4)});
  const std::string csv_path = options.out_dir + "/schedule_extension.csv";
  csv.write_file(csv_path);
  std::printf("csv: %s\n", csv_path.c_str());
  return 0;
}
