// Reproduces Table 5 of the paper: the four code representations of the
// canonical example loop.
#include "bench/common.h"
#include "frontend/dfs.h"
#include "frontend/parser.h"
#include "tokenize/representation.h"

using namespace clpp;

int main(int argc, char** argv) {
  ArgParser parser("bench_table5_representations", "Table 5: code representations");
  bench::add_common_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  const bench::BenchOptions options = bench::read_common_options(parser);
  bench::print_banner("Table 5: the four code representations", options);

  const std::string code = "for (i = 0; i < len; i++) a[i] = i;";
  std::printf("source: %s\n\n", code.c_str());

  for (tokenize::Representation rep : tokenize::all_representations()) {
    const auto tokens = tokenize::tokenize(code, rep);
    std::printf("%-7s (%zu tokens): %s\n",
                tokenize::representation_name(rep).c_str(), tokens.size(),
                join(tokens, " ").c_str());
  }

  // The indented AST rendering the paper prints in the table body.
  std::printf("\nAST (indented form):\n%s\n",
              frontend::dfs_lines(*frontend::parse_snippet(code)).c_str());
  std::printf("identifier replacement map: ");
  for (const auto& [from, to] : tokenize::replacement_map(code))
    std::printf("%s->%s ", from.c_str(), to.c_str());
  std::printf("\n");
  return 0;
}
