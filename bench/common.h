// Shared scaffolding for the bench harnesses (one binary per paper table
// or figure — see DESIGN.md §3).
//
// Every bench accepts:
//   --scale quick|paper   experiment size (default quick: single-core
//                         friendly; paper: full 28,374-snippet corpus and
//                         the larger model)
//   --seed N              master seed (default 2023)
//   --out-dir PATH        where CSV artifacts are written (default ".")
#pragma once

#include <cstdio>
#include <string>

#include "core/pipeline.h"
#include "support/cli.h"
#include "support/stopwatch.h"
#include "support/strings.h"
#include "support/table.h"

namespace clpp::bench {

/// Parsed common options.
struct BenchOptions {
  std::string scale = "quick";
  std::uint64_t seed = 2023;
  std::string out_dir = ".";

  bool paper_scale() const { return scale == "paper"; }
};

/// Declares the shared options on `parser`.
inline void add_common_options(ArgParser& parser) {
  parser.add_string("scale", "quick", "experiment scale: quick | paper");
  parser.add_int("seed", 2023, "master random seed");
  parser.add_string("out-dir", ".", "directory for CSV artifacts");
}

/// Reads the shared options back.
inline BenchOptions read_common_options(const ArgParser& parser) {
  BenchOptions options;
  options.scale = parser.get_string("scale");
  CLPP_CHECK_MSG(options.scale == "quick" || options.scale == "paper",
                 "--scale must be quick or paper");
  options.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  options.out_dir = parser.get_string("out-dir");
  return options;
}

/// The pipeline configuration for a scale. `quick` is sized so each bench
/// finishes in minutes on one core; `paper` matches the paper's corpus
/// size and uses the bigger encoder.
inline core::PipelineConfig pipeline_config(const BenchOptions& options) {
  core::PipelineConfig config;
  config.generator.seed = options.seed;
  config.split_seed = options.seed + 1;
  config.model_seed = options.seed + 2;
  if (options.paper_scale()) {
    config.generator.size = 28374;  // Table 3
    config.max_len = 110;           // §4.3
    config.encoder.dim = 64;
    config.encoder.heads = 4;
    config.encoder.layers = 2;
    config.encoder.ffn_dim = 128;
    config.train.epochs = 10;
    config.train.batch_size = 32;
    config.train.lr = 5e-4f;
    config.mlm.epochs = 2;
  } else {
    config.generator.size = 2000;
    config.max_len = 64;  // tight cap: long (AST) serializations pay for truncation
    config.encoder.dim = 48;
    config.encoder.heads = 4;
    config.encoder.layers = 2;
    config.encoder.ffn_dim = 96;
    config.train.epochs = 8;
    config.train.batch_size = 32;
    config.train.lr = 7e-4f;
    config.mlm.epochs = 2;
  }
  return config;
}

/// Banner printed at the top of every bench.
inline void print_banner(const std::string& what, const BenchOptions& options) {
  std::printf("== %s ==\n", what.c_str());
  std::printf("scale=%s seed=%llu\n\n", options.scale.c_str(),
              static_cast<unsigned long long>(options.seed));
}

/// Prints a (Precision, Recall, F1) row into a TextTable.
inline void add_metric_row(TextTable& table, const std::string& name,
                           const core::BinaryMetrics& metrics) {
  table.add_row({name, TextTable::num(metrics.precision()),
                 TextTable::num(metrics.recall()), TextTable::num(metrics.f1())});
}

}  // namespace clpp::bench
