// Throughput of batched serving vs. single-request inference (clpp::serve).
//
// Three rungs, all over the same request mix and the default model config
// (PipelineConfig encoder: dim 64, 2 layers, 4 heads):
//   BM_SequentialInference   one advise() per request — the clpp_cli path
//   BM_BatchedInference      one advise_batch() over the whole mix
//   BM_ServerClosedLoop/B    32 closed-loop clients against InferenceServer
//                            with max_batch = B (B=1 ≈ single-request
//                            serving, B=32 = full micro-batching)
//
// The interesting ratio is BM_BatchedInference (or ServerClosedLoop/32)
// items_per_second over BM_SequentialInference: the dynamic micro-batching
// win. The mix models concurrent advisor traffic — 32 in-flight requests
// drawn from 8 distinct loop forms, because idiomatic loops recur across a
// codebase — so the win decomposes into (a) coalescing: advise_batch runs
// each distinct snippet once and fans the verdict out (the dominant term on
// a single core, where per-row transformer FLOPs cannot be amortized),
// (b) exact-length bucketing: no padding FLOPs even for mixed-length
// batches, and (c) on multi-core hosts, one batched forward parallelizes
// across rows where 32 stateful single-row forwards cannot. B=1 cannot
// coalesce or bucket (every batch is one request), which is exactly the
// single-request serving baseline.
//
// Advice options are model-only on every rung so the comparison isolates
// transformer inference (the deterministic analyzer/ComPar extras cost the
// same per snippet on either path). All rates are wall-time items/s.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/advisor.h"
#include "obs/obs.h"
#include "serve/server.h"
#include "tokenize/representation.h"
#include "tokenize/vocabulary.h"

namespace {

using namespace clpp;

constexpr std::size_t kConcurrency = 32;

const std::vector<std::string>& snippet_mix() {
  static const std::vector<std::string> base = {
      "for (i = 0; i < n; i++) a[i] = b[i];",
      "for (i = 0; i < n; i++) c[i] = a[i] + b[i];",
      "for (i = 0; i < n; i++) sum += a[i] * b[i];",
      "for (i = 1; i < n; i++) a[i] = a[i - 1] + 1;",
      "for (i = 0; i < n; i++) { t = a[i] * 0.5; b[i] = t + a[i]; }",
      "for (i = 0; i < n; i++) { if (a[i] > 0.5) a[i] = evolve(a[i]); }",
      "for (i = 0; i < n; i++) { for (j = 0; j < m; j++) c[i] += a[i] * b[j]; }",
      "for (i = 0; i < n; i++) best = a[i] > best ? a[i] : best;",
  };
  static const std::vector<std::string> mix = [] {
    std::vector<std::string> all;
    for (std::size_t i = 0; i < kConcurrency; ++i)
      all.push_back(base[i % base.size()]);
    return all;
  }();
  return mix;
}

/// Untrained advisor on the default model config — weights are irrelevant
/// for throughput, and skipping training keeps the bench startup instant.
const core::ParallelAdvisor& advisor() {
  static const std::unique_ptr<core::ParallelAdvisor> instance = [] {
    std::vector<std::vector<std::string>> documents;
    for (const std::string& code : snippet_mix())
      documents.push_back(tokenize::tokenize(code, tokenize::Representation::kText));
    tokenize::Vocabulary vocab = tokenize::Vocabulary::build(documents);

    core::PipelineConfig defaults;  // the default encoder shape
    core::PragFormerConfig config;
    config.encoder = defaults.encoder;
    config.encoder.vocab_size = vocab.size();
    Rng rng(2023);
    auto directive = std::make_unique<core::PragFormer>(config, rng);
    auto private_model = std::make_unique<core::PragFormer>(config, rng);
    auto reduction = std::make_unique<core::PragFormer>(config, rng);
    auto schedule = std::make_unique<core::PragFormer>(config, rng);
    auto built = std::make_unique<core::ParallelAdvisor>(
        std::move(directive), std::move(private_model), std::move(reduction),
        std::move(vocab), tokenize::Representation::kText, defaults.max_len);
    built->set_schedule_model(std::move(schedule));
    return built;
  }();
  return *instance;
}

core::AdviseOptions model_only() {
  core::AdviseOptions options;
  options.with_analysis = false;
  options.with_compar = false;
  return options;
}

void BM_SequentialInference(benchmark::State& state) {
  const auto& codes = snippet_mix();
  for (auto _ : state) {
    for (const std::string& code : codes)
      benchmark::DoNotOptimize(advisor().advise(code, model_only()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * codes.size()));
}
BENCHMARK(BM_SequentialInference)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BatchedInference(benchmark::State& state) {
  const auto& codes = snippet_mix();
  for (auto _ : state)
    benchmark::DoNotOptimize(advisor().advise_batch(codes, model_only()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * codes.size()));
}
BENCHMARK(BM_BatchedInference)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ServerClosedLoop(benchmark::State& state) {
  const auto& codes = snippet_mix();
  serve::ServeConfig config;
  config.max_batch = static_cast<std::size_t>(state.range(0));
  config.max_delay_us = 2000;
  config.options = model_only();
  // The server stays resident across iterations: constructing one (it clones
  // a model replica per worker) is serving *setup*, not per-request work.
  serve::InferenceServer server(advisor(), config);
  constexpr std::size_t kPerClient = 4;
  for (auto _ : state) {
    std::vector<std::thread> clients;
    clients.reserve(kConcurrency);
    for (std::size_t c = 0; c < kConcurrency; ++c) {
      clients.emplace_back([&, c] {
        // Closed loop: each client keeps exactly one request in flight.
        for (std::size_t r = 0; r < kPerClient; ++r)
          server.submit(codes[c % codes.size()]).get();
      });
    }
    for (std::thread& t : clients) t.join();
  }
  server.shutdown();
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kConcurrency * kPerClient));
}
// UseRealTime matters: the forwards run on worker threads, so the main
// thread's CPU time would wildly overstate throughput.
BENCHMARK(BM_ServerClosedLoop)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Observability overhead on the serve hot path: the same full-batching
// closed loop with CLPP_OBS forced off (Arg 0) vs on (Arg 1). With obs on,
// every request additionally mints flow-linked trace spans, records
// registry histograms, and updates the queue-depth gauge. The items/s ratio
// on/off is the evidence behind the <5% tracing-overhead SLO that
// scripts/check_slo.sh enforces end-to-end via the loadgen.
void BM_ServerClosedLoopObs(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  const auto& codes = snippet_mix();
  serve::ServeConfig config;
  config.max_batch = kConcurrency;
  config.max_delay_us = 2000;
  config.options = model_only();
  serve::InferenceServer server(advisor(), config);
  constexpr std::size_t kPerClient = 4;
  for (auto _ : state) {
    std::vector<std::thread> clients;
    clients.reserve(kConcurrency);
    for (std::size_t c = 0; c < kConcurrency; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t r = 0; r < kPerClient; ++r)
          server.submit(codes[c % codes.size()]).get();
      });
    }
    for (std::thread& t : clients) t.join();
  }
  server.shutdown();
  obs::set_enabled(was_enabled);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kConcurrency * kPerClient));
}
BENCHMARK(BM_ServerClosedLoopObs)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
