// Ablation: MLM pretraining (the DeepSCC transfer stand-in, DESIGN.md §1)
// vs training PragFormer from scratch on the directive task.
//
// The paper fine-tunes from DeepSCC and frames it as transfer learning into
// a low-resource setting (§4.1); this bench quantifies what the pretrained
// initialization buys at our scale, reporting curves for both arms.
#include "bench/common.h"
#include "support/csv.h"
#include "support/plot.h"

using namespace clpp;

int main(int argc, char** argv) {
  ArgParser parser("bench_ablation_pretrain", "ablation: MLM pretraining");
  bench::add_common_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  const bench::BenchOptions options = bench::read_common_options(parser);
  bench::print_banner("Ablation: MLM-pretrained encoder vs from-scratch", options);

  CsvWriter csv({"arm", "epoch", "val_accuracy", "val_loss"});
  std::vector<PlotSeries> series;
  std::map<std::string, core::BinaryMetrics> results;

  for (const bool pretrain : {true, false}) {
    const std::string arm = pretrain ? "mlm-pretrained" : "from-scratch";
    core::PipelineConfig config = bench::pipeline_config(options);
    config.mlm_pretrain = pretrain;
    std::printf("training arm: %s\n", arm.c_str());
    Stopwatch timer;
    core::Pipeline pipeline(config);
    core::TaskRun run = pipeline.train_task(corpus::Task::kDirective);
    std::printf("  %.1fs; %s\n", timer.seconds(), run.test_metrics().summary().c_str());

    std::vector<double> acc;
    for (const core::EpochCurve& curve : run.curves) {
      acc.push_back(curve.val_accuracy);
      csv.add_row({arm, std::to_string(curve.epoch + 1), fixed(curve.val_accuracy, 4),
                   fixed(curve.val_loss, 4)});
    }
    series.push_back({arm, std::move(acc)});
    results.emplace(arm, run.test_metrics());
  }

  AsciiPlot plot("Validation accuracy: MLM-pretrained vs from-scratch", "epoch",
                 "val accuracy");
  for (const PlotSeries& s : series) plot.add_series(s.name, s.ys);
  std::printf("\n%s\n", plot.str().c_str());

  TextTable table({"", "Precision", "Recall", "F1"});
  for (const auto& [arm, metrics] : results) bench::add_metric_row(table, arm, metrics);
  std::printf("%s\n", table.str().c_str());

  const std::string csv_path = options.out_dir + "/ablation_pretrain.csv";
  csv.write_file(csv_path);
  std::printf("csv: %s\n", csv_path.c_str());
  return 0;
}
