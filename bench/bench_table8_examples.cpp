// Reproduces Table 8 of the paper: qualitative PragFormer predictions on
// the paper's four example snippets (stencil-with-reduction, I/O loop,
// determinant computation, matrix multiplication).
#include "bench/common.h"
#include "core/advisor.h"

using namespace clpp;

namespace {

struct Exemplar {
  const char* description;
  const char* code;
  const char* label;  // the paper's directive label
};

constexpr Exemplar kExemplars[] = {
    {"Jacobi sweep with max-residual (paper row 1)",
     "for (i = 1; i < (subprob_size - 1); i++) {\n"
     "    b[i][j] = 0.2 * ((((a[i][j] + a[i - 1][j]) + a[i + 1][j]) + rfcbuff[i]) + "
     "a[i][j + 1]);\n"
     "    if (fabs(b[i][j] - a[i][j]) > maxdiff)\n"
     "        maxdiff = fabs(b[i][j] - a[i][j]);\n"
     "}\n",
     "With OpenMP"},
    {"I/O loop (paper row 2)",
     "for (int i = 0; i < n; i++)\n"
     "    fprintf(f, \"%d\\n\", arr[i]);\n",
     "Without OpenMP"},
    {"determinant with malloc/free per iteration (paper row 3)",
     "for (y = 0; y < 10; y++) {\n"
     "    b = (long **) malloc(10 * (sizeof(long *)));\n"
     "    for (i = 0; i < m; i++)\n"
     "        b[i] = (long *) malloc((sizeof(long *)) * 10);\n"
     "    for (int x = 0; x < 10; x++)\n"
     "        for (int g = 0; g < 10; g++)\n"
     "            b[x][g] = 0;\n"
     "    getCofactor(a, b, 0, y, m);\n"
     "    if (y % 2)\n"
     "        det += ((-1) * a[0][y]) * detMat(b, m - 1);\n"
     "    else\n"
     "        det += a[0][y] * detMat(b, m - 1);\n"
     "    for (i = 0; i < m; i++)\n"
     "        free(b[i]);\n"
     "    free(b);\n"
     "}\n",
     "With OpenMP"},
    {"linearized matrix multiplication (paper row 4)",
     "for (i = 0; i < NI; i++) {\n"
     "    for (j = 0; j < NL; j++) {\n"
     "        G[(i * NL) + j] = 0;\n"
     "        for (k = 0; k < NJ; ++k) {\n"
     "            G[(i * NL) + j] += E[(i * NJ) + k] * F[(k * NL) + j];\n"
     "        }\n"
     "    }\n"
     "}\n",
     "Without OpenMP"},
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("bench_table8_examples", "Table 8: qualitative predictions");
  bench::add_common_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  const bench::BenchOptions options = bench::read_common_options(parser);
  bench::print_banner("Table 8: classification examples", options);

  std::printf("training the advisor (directive + clause models)...\n");
  Stopwatch timer;
  core::PipelineConfig config = bench::pipeline_config(options);
  if (!options.paper_scale()) {
    // Qualitative per-snippet predictions need a less noisy model than the
    // aggregate metrics do: more data, more epochs, best-epoch selection.
    config.generator.size = 4000;
    config.train.epochs = 10;
    config.train.select_best_epoch = true;
    config.mlm_pretrain = false;  // keeps the 4-model training under ~8 min
  }
  const core::ParallelAdvisor advisor = core::ParallelAdvisor::train(config);
  std::printf("  done in %.1fs\n\n", timer.seconds());

  TextTable table({"Example", "Directive label", "PragFormer prediction", "p"});
  for (const Exemplar& exemplar : kExemplars) {
    const core::Advice advice = advisor.advise(exemplar.code);
    table.add_row({exemplar.description, exemplar.label,
                   advice.needs_directive ? "With OpenMP" : "Without OpenMP",
                   fixed(advice.p_directive, 2)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("paper predictions: row1 With, row2 Without, row3 Without "
              "(model error), row4 With (model error)\n\n");

  // Show the full advice for the first exemplar, clauses included.
  const core::Advice advice = advisor.advise(kExemplars[0].code);
  std::printf("full advice for row 1:\n  p_directive=%.2f p_private=%.2f "
              "p_reduction=%.2f\n  suggestion: %s\n",
              advice.p_directive, advice.p_private, advice.p_reduction,
              advice.suggestion.c_str());
  if (!advice.compar_suggestion.empty())
    std::printf("  ComPar would emit: %s\n", advice.compar_suggestion.c_str());
  return 0;
}
