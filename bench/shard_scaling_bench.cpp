// Closed-loop shard-scaling + cache-effectiveness bench (DESIGN.md §13).
//
// For each shard count in --points, forks a real sharded front end (the
// same ShardSupervisor + SocketListener stack clpp-serve --listen runs) and
// drives it with a multi-threaded closed-loop socket load generator over a
// distinct-snippet mix, measuring throughput and client latency
// percentiles. Then, at the largest point, measures an 80%-duplicate mix
// twice — result cache on and off — to quantify the cross-request cache
// win. Every response's verdict fields are recorded per snippet across ALL
// runs (fresh, coalesced, cached, different shard counts), so the artifact
// also certifies that caching never changes an answer.
//
// Emits one clpp.shard_scaling.v1 JSON document (--out) with per-point
// series plus derived `scaling` and `cache_win` blocks; check_scaling.sh
// gates on it via clpp-slo's `scaling` budget block.
//
// OMP_NUM_THREADS is forced to 1: the bench measures scale-out across
// shard *processes*, so per-shard inference must not silently fan out over
// the same cores the other shards need. Scaling is therefore judged
// against min(shards, ncores) — a 2-core runner is expected to scale to 2
// shards and flatline beyond, not to 8.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cache/cache.h"
#include "core/advisor.h"
#include "shard/frame.h"
#include "shard/listener.h"
#include "shard/supervisor.h"
#include "support/cli.h"
#include "support/json.h"
#include "tokenize/representation.h"
#include "tokenize/vocabulary.h"

namespace {

using namespace clpp;
using Clock = std::chrono::steady_clock;

// ------------------------------------------------------------ snippet mixes

/// Hot set for duplicate-rate mixes: realistic parallelizable/serial loops,
/// distinct from one another so the front cache holds `hot_set` entries.
std::string hot_snippet(std::size_t k) {
  std::ostringstream out;
  out << "for (i = 0; i < n; i++) { h" << k << "[i] = x" << k
      << "[i] * 2.0f + y" << k << "[i]; hsum" << k << " += h" << k << "[i]; }";
  return out.str();
}

/// Unique per global request index: never repeats across the whole bench,
/// so a distinct mix is a guaranteed 100% cache-miss workload.
std::string distinct_snippet(std::size_t r) {
  std::ostringstream out;
  out << "for (i = 0; i < n; i++) { u" << r << "[i] = v" << r
      << "[i] * 3.0f + w[i]; acc" << r << " += u" << r << "[i]; }";
  return out.str();
}

/// Untrained advisor on the default encoder shape (same construction as
/// clpp-serve --random-model): scaling and cache behaviour are independent
/// of model quality, and skipping training keeps the bench self-contained.
core::ParallelAdvisor bench_advisor() {
  std::vector<std::vector<std::string>> documents;
  for (std::size_t k = 0; k < 32; ++k)
    documents.push_back(
        tokenize::tokenize(hot_snippet(k), tokenize::Representation::kText));
  documents.push_back(
      tokenize::tokenize(distinct_snippet(0), tokenize::Representation::kText));
  tokenize::Vocabulary vocab = tokenize::Vocabulary::build(documents);

  core::PipelineConfig defaults;
  core::PragFormerConfig config;
  config.encoder = defaults.encoder;
  config.encoder.vocab_size = vocab.size();
  Rng rng(2023);
  auto directive = std::make_unique<core::PragFormer>(config, rng);
  auto private_model = std::make_unique<core::PragFormer>(config, rng);
  auto reduction = std::make_unique<core::PragFormer>(config, rng);
  auto schedule = std::make_unique<core::PragFormer>(config, rng);
  core::ParallelAdvisor advisor(std::move(directive), std::move(private_model),
                                std::move(reduction), std::move(vocab),
                                tokenize::Representation::kText,
                                defaults.max_len);
  advisor.set_schedule_model(std::move(schedule));
  return advisor;
}

// ----------------------------------------------------------- socket client

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Verdict projection for the cross-run identity check: everything except
/// per-request bookkeeping and per-serving telemetry (mirrors clpp-serve's
/// socket loadgen).
Json normalized_verdict(const Json& body) {
  static const char* kVolatile[] = {"id",       "client",   "trace_id",
                                    "queue_us", "batch_us", "infer_us",
                                    "coalesced", "cached"};
  Json out = Json::object();
  for (const auto& [key, value] : body.fields()) {
    bool volatile_key = false;
    for (const char* skip : kVolatile)
      if (key == skip) volatile_key = true;
    if (!volatile_key) out[key] = value;
  }
  return out;
}

// ------------------------------------------------------------- front end

shard::SocketListener* g_listener = nullptr;
void stop_listener(int) {
  if (g_listener != nullptr) g_listener->stop();
}

/// Child-process body: run a sharded front end until SIGTERM, then drain
/// and exit without returning (the child must never fall back into the
/// bench's main()).
[[noreturn]] void run_front_end(const core::ParallelAdvisor& advisor,
                                std::size_t shards, std::size_t cache_entries,
                                int port_fd) {
  shard::SupervisorConfig sup;
  sup.shards = shards;
  sup.serve.workers = 1;
  sup.serve.options.with_analysis = false;
  sup.serve.options.with_compar = false;
  sup.serve.cache.max_entries = cache_entries;
  sup.cache.max_entries = cache_entries;
  shard::ListenerConfig listen;
  listen.port = 0;
  shard::ShardSupervisor supervisor(advisor, sup);
  shard::SocketListener listener(supervisor, listen);
  listener.start();
  supervisor.start();
  g_listener = &listener;
  std::signal(SIGTERM, stop_listener);
  const std::uint16_t port = listener.port();
  // Hand the ephemeral port to the parent over the pipe.
  char line[16];
  const int len = std::snprintf(line, sizeof line, "%u\n",
                                static_cast<unsigned>(port));
  if (::write(port_fd, line, static_cast<std::size_t>(len)) != len)
    std::_Exit(2);
  ::close(port_fd);
  listener.run();
  supervisor.drain();
  std::_Exit(0);
}

// ------------------------------------------------------------- one point

struct PointResult {
  std::size_t shards = 0;
  double dup_rate = 0.0;
  std::size_t cache_cap = 0;
  std::size_t requests = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t errors = 0;
  std::size_t lost = 0;
  std::size_t cached = 0;
  double seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  Json server = Json::object();
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank =
      static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

PointResult run_point(const core::ParallelAdvisor& advisor, std::size_t shards,
                      std::size_t cache_entries, std::size_t requests,
                      std::size_t concurrency, double dup_rate,
                      std::size_t hot_set,
                      std::map<std::string, std::string>* verdict_of,
                      std::size_t* mismatches) {
  int port_pipe[2];
  if (::pipe(port_pipe) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  // Fork while single-threaded: the loadgen threads of the previous point
  // are already joined, so the child (and its shard forks) start clean.
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    ::close(port_pipe[0]);
    run_front_end(advisor, shards, cache_entries, port_pipe[1]);
  }
  ::close(port_pipe[1]);
  char buf[16] = {0};
  std::size_t got = 0;
  while (got + 1 < sizeof buf) {
    const ssize_t rc = ::read(port_pipe[0], buf + got, sizeof buf - 1 - got);
    if (rc <= 0) break;
    got += static_cast<std::size_t>(rc);
    if (std::memchr(buf, '\n', got) != nullptr) break;
  }
  ::close(port_pipe[0]);
  const auto port = static_cast<std::uint16_t>(std::atoi(buf));
  if (port == 0) {
    std::fprintf(stderr, "shard_scaling_bench: front end reported no port\n");
    ::kill(pid, SIGKILL);
    std::exit(1);
  }

  PointResult result;
  result.shards = shards;
  result.dup_rate = dup_rate;
  result.cache_cap = cache_entries;
  result.requests = requests;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> ok{0}, shed{0}, errors{0}, lost{0}, cached{0};
  std::atomic<std::size_t> bad{0};
  std::mutex collect_mu;  // guards latencies + verdict map
  std::vector<double> latencies;
  latencies.reserve(requests);
  // The duplicate decision is a pure function of the request index, so the
  // cache-on and cache-off runs of a mix replay the identical multiset of
  // snippets regardless of how threads interleave.
  const auto dup_cut = static_cast<std::size_t>(dup_rate * 100.0);
  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(concurrency);
  for (std::size_t c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      int fd = connect_loopback(port);
      for (;;) {
        const std::size_t r = next.fetch_add(1);
        if (r >= requests) break;
        if (fd < 0) fd = connect_loopback(port);
        if (fd < 0) {
          ++lost;
          continue;
        }
        const std::string code = (r % 100) < dup_cut
                                     ? hot_snippet(r % hot_set)
                                     : distinct_snippet(r);
        Json request = Json::object();
        request["id"] = static_cast<std::int64_t>(r + 1);
        request["code"] = code;
        request["client"] = "scale-" + std::to_string(c);
        shard::Frame frame;
        frame.payload = request.dump();
        const auto s0 = Clock::now();
        if (!shard::write_frame_fd(fd, frame)) {
          ++lost;
          ::close(fd);
          fd = -1;
          continue;
        }
        shard::Frame reply;
        std::string error;
        if (shard::read_frame_fd(fd, &reply, &error) !=
            shard::ReadStatus::kFrame) {
          ++lost;
          ::close(fd);
          fd = -1;
          continue;
        }
        try {
          const Json body = Json::parse(reply.payload);
          if (body.contains("error")) {
            if (body.get_string("error", "") == "overloaded")
              ++shed;
            else
              ++errors;
            continue;
          }
          ++ok;
          if (body.get_bool("cached", false)) ++cached;
          const double us =
              std::chrono::duration<double, std::micro>(Clock::now() - s0)
                  .count();
          const std::string verdict = normalized_verdict(body).dump();
          std::lock_guard lock(collect_mu);
          latencies.push_back(us);
          const auto [it, inserted] = verdict_of->emplace(code, verdict);
          if (!inserted && it->second != verdict) ++bad;
        } catch (const std::exception&) {
          ++errors;
        }
      }
      if (fd >= 0) ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  result.seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  *mismatches += bad.load();

  // Server-side stats (per-shard served counts, front-cache hit/miss) over
  // one extra connection, then stop the front end.
  const int fd = connect_loopback(port);
  if (fd >= 0) {
    Json request = Json::object();
    request["cmd"] = "stats";
    shard::Frame frame;
    frame.payload = request.dump();
    shard::Frame reply;
    std::string error;
    if (shard::write_frame_fd(fd, frame) &&
        shard::read_frame_fd(fd, &reply, &error) == shard::ReadStatus::kFrame) {
      try {
        result.server = Json::parse(reply.payload).at("stats");
      } catch (const std::exception&) {
      }
    }
    ::close(fd);
  }
  ::kill(pid, SIGTERM);
  int status = 0;
  ::waitpid(pid, &status, 0);

  result.ok = ok.load();
  result.shed = shed.load();
  result.errors = errors.load();
  result.lost = lost.load();
  result.cached = cached.load();
  result.throughput_rps =
      result.seconds > 0.0
          ? static_cast<double>(result.requests) / result.seconds
          : 0.0;
  std::sort(latencies.begin(), latencies.end());
  result.p50_us = percentile(latencies, 0.50);
  result.p95_us = percentile(latencies, 0.95);
  result.p99_us = percentile(latencies, 0.99);
  std::fprintf(stderr,
               "point: shards=%zu dup=%.0f%% cache=%zu -> %.1f req/s "
               "(p50 %.0f us, p99 %.0f us, %zu cached, %zu lost)\n",
               shards, dup_rate * 100.0, cache_entries, result.throughput_rps,
               result.p50_us, result.p99_us, result.cached, result.lost);
  return result;
}

Json point_json(const PointResult& point) {
  Json row = Json::object();
  row["shards"] = static_cast<std::int64_t>(point.shards);
  row["dup_rate"] = point.dup_rate;
  row["cache_cap"] = static_cast<std::int64_t>(point.cache_cap);
  row["requests"] = static_cast<std::int64_t>(point.requests);
  row["ok"] = static_cast<std::int64_t>(point.ok);
  row["shed"] = static_cast<std::int64_t>(point.shed);
  row["errors"] = static_cast<std::int64_t>(point.errors);
  row["lost"] = static_cast<std::int64_t>(point.lost);
  row["cached_responses"] = static_cast<std::int64_t>(point.cached);
  row["seconds"] = point.seconds;
  row["throughput_rps"] = point.throughput_rps;
  Json latency = Json::object();
  latency["p50"] = point.p50_us;
  latency["p95"] = point.p95_us;
  latency["p99"] = point.p99_us;
  row["latency_us"] = std::move(latency);
  row["server"] = point.server;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  // Scale-out across shard processes is the measurement; per-shard OpenMP
  // fan-out would let a single shard consume every core and flatten the
  // curve for reasons that have nothing to do with the serving stack.
  ::setenv("OMP_NUM_THREADS", "1", 1);

  ArgParser parser("shard_scaling_bench",
                   "closed-loop scaling + cache-effectiveness bench over the "
                   "sharded serving front end (clpp.shard_scaling.v1)");
  parser.add_string("points", "1 2 4",
                    "shard counts for the distinct-mix scaling series");
  parser.add_int("requests", 96, "requests per distinct-mix point");
  parser.add_int("dup-requests", 256, "requests per duplicate-mix point");
  parser.add_int("concurrency", 8, "closed-loop client threads");
  parser.add_double("dup-rate", 0.8, "duplicate fraction of the hot mix");
  parser.add_int("hot-set", 16, "distinct snippets behind the duplicates");
  parser.add_int("cache-cap", 4096, "result-cache entries when enabled");
  parser.add_string("out", "", "write the clpp.shard_scaling.v1 artifact here");
  try {
    if (!parser.parse(argc, argv)) return 0;
    std::vector<std::size_t> points;
    {
      std::istringstream in(parser.get_string("points"));
      std::size_t value = 0;
      while (in >> value)
        if (value > 0) points.push_back(value);
    }
    if (points.empty()) points = {1, 2, 4};
    std::sort(points.begin(), points.end());
    const auto requests = static_cast<std::size_t>(parser.get_int("requests"));
    const auto dup_requests =
        static_cast<std::size_t>(parser.get_int("dup-requests"));
    const auto concurrency =
        static_cast<std::size_t>(parser.get_int("concurrency"));
    const double dup_rate = parser.get_double("dup-rate");
    const auto hot_set = static_cast<std::size_t>(parser.get_int("hot-set"));
    const auto cache_cap =
        static_cast<std::size_t>(parser.get_int("cache-cap"));

    const core::ParallelAdvisor advisor = bench_advisor();
    std::map<std::string, std::string> verdict_of;
    std::size_t mismatches = 0;

    // Distinct-mix scaling series (cache irrelevant: every snippet unique,
    // so hits are structurally impossible — run it cache-on to prove the
    // lookup overhead is in the measurement).
    std::vector<PointResult> series;
    for (const std::size_t shards : points)
      series.push_back(run_point(advisor, shards, cache_cap, requests,
                                 concurrency, 0.0, hot_set, &verdict_of,
                                 &mismatches));

    // Cache win at the largest point: same duplicate-heavy mix, cache on
    // vs off. The off run replays snippets the on run already recorded, so
    // the verdict map cross-checks cached against fresh servings.
    const std::size_t top = points.back();
    const PointResult dup_on =
        run_point(advisor, top, cache_cap, dup_requests, concurrency, dup_rate,
                  hot_set, &verdict_of, &mismatches);
    const PointResult dup_off =
        run_point(advisor, top, 0, dup_requests, concurrency, dup_rate,
                  hot_set, &verdict_of, &mismatches);

    const unsigned ncores = std::max(1u, std::thread::hardware_concurrency());
    const double base_rps = series.front().throughput_rps;
    const double top_rps = series.back().throughput_rps;
    const std::size_t effective =
        std::min<std::size_t>(top, ncores);
    // Judge the curve at the largest point the machine can actually
    // parallelize: throughput at `effective` shards over 1-shard
    // throughput, normalized per shard.
    double effective_rps = base_rps;
    for (const PointResult& point : series)
      if (point.shards <= effective) effective_rps = point.throughput_rps;
    const double speedup = base_rps > 0.0 ? top_rps / base_rps : 0.0;
    const double per_core_speedup =
        base_rps > 0.0 && effective > 0
            ? (effective_rps / base_rps) / static_cast<double>(effective)
            : 0.0;
    const double cache_speedup = dup_off.throughput_rps > 0.0
                                     ? dup_on.throughput_rps /
                                           dup_off.throughput_rps
                                     : 0.0;
    const double hit_rate =
        dup_on.ok > 0
            ? static_cast<double>(dup_on.cached) /
                  static_cast<double>(dup_on.ok)
            : 0.0;
    std::size_t lost_total = dup_on.lost + dup_off.lost;
    for (const PointResult& point : series) lost_total += point.lost;

    Json report = Json::object();
    report["schema"] = "clpp.shard_scaling.v1";
    report["concurrency"] = static_cast<std::int64_t>(concurrency);
    report["hot_set"] = static_cast<std::int64_t>(hot_set);
    report["cache_cap"] = static_cast<std::int64_t>(cache_cap);
    Json rows = Json::array();
    for (const PointResult& point : series) rows.push_back(point_json(point));
    rows.push_back(point_json(dup_on));
    rows.push_back(point_json(dup_off));
    report["points"] = std::move(rows);
    Json scaling = Json::object();
    scaling["ncores"] = static_cast<std::int64_t>(ncores);
    scaling["base_shards"] = static_cast<std::int64_t>(points.front());
    scaling["top_shards"] = static_cast<std::int64_t>(top);
    scaling["effective_shards"] = static_cast<std::int64_t>(effective);
    scaling["base_rps"] = base_rps;
    scaling["top_rps"] = top_rps;
    scaling["speedup"] = speedup;
    scaling["per_core_speedup"] = per_core_speedup;
    report["scaling"] = std::move(scaling);
    Json cache_win = Json::object();
    cache_win["shards"] = static_cast<std::int64_t>(top);
    cache_win["dup_rate"] = dup_rate;
    cache_win["on_rps"] = dup_on.throughput_rps;
    cache_win["off_rps"] = dup_off.throughput_rps;
    cache_win["speedup"] = cache_speedup;
    cache_win["hit_rate"] = hit_rate;
    cache_win["cached_responses"] =
        static_cast<std::int64_t>(dup_on.cached);
    report["cache_win"] = std::move(cache_win);
    report["lost"] = static_cast<std::int64_t>(lost_total);
    report["verdicts_identical"] = mismatches == 0;
    report["verdict_mismatches"] = static_cast<std::int64_t>(mismatches);

    std::fprintf(stderr,
                 "scaling: %.1f -> %.1f req/s (%.2fx, %.2f/core over %zu "
                 "effective); cache: %.1f vs %.1f req/s (%.2fx, hit rate "
                 "%.2f); verdicts %s\n",
                 base_rps, top_rps, speedup, per_core_speedup, effective,
                 dup_on.throughput_rps, dup_off.throughput_rps, cache_speedup,
                 hit_rate, mismatches == 0 ? "identical" : "DIVERGED");
    const std::string text = report.dump();
    const std::string out = parser.get_string("out");
    if (!out.empty()) {
      std::FILE* f = std::fopen(out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", out.c_str());
        return 1;
      }
      std::fwrite(text.data(), 1, text.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    } else {
      std::printf("%s\n", text.c_str());
    }
    return mismatches == 0 && lost_total == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shard_scaling_bench: %s\n", e.what());
    return 1;
  }
}
